//! Statistics primitives used to regenerate the paper's figures.
//!
//! These are deliberately simple value types: simulators mutate them on the
//! hot path, experiment runners read them out at the end, and the benchmark
//! harness formats them into the rows/series the paper reports.

use std::fmt;

use crate::persist::{Codec, PersistError, Reader, Writer};

/// An online mean over `u64` samples.
///
/// # Example
/// ```
/// use row_common::stats::RunningMean;
/// let mut m = RunningMean::new();
/// m.add(10);
/// m.add(20);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunningMean {
    sum: u128,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        RunningMean { sum: 0, count: 0 }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: u64) {
        self.sum += sample as u128;
        self.count += 1;
    }

    /// The mean of all samples, or 0.0 if none were added.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> u128 {
        self.sum
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A power-of-two-bucketed latency histogram.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` (bucket 0 holds 0 and 1).
///
/// # Example
/// ```
/// use row_common::stats::Histogram;
/// let mut h = Histogram::new();
/// h.add(5);
/// h.add(300);
/// assert_eq!(h.count(), 2);
/// assert!(h.percentile(0.5) <= 300);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: u64) {
        let b = (64 - sample.max(1).leading_zeros() - 1) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q` quantile (`q` in \[0,1\]).
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Sub-buckets per power-of-two octave in a [`LogHistogram`].
const LOG_HIST_SUBS: usize = 4;

/// Total buckets in a [`LogHistogram`]: 4 exact buckets for 0..=3 plus 4
/// sub-buckets for each octave `[2^m, 2^(m+1))`, `m` in 2..=63.
const LOG_HIST_BUCKETS: usize = LOG_HIST_SUBS + 62 * LOG_HIST_SUBS;

/// A log-bucketed latency histogram with sub-buckets per octave.
///
/// The plain [`Histogram`] has power-of-two buckets, so a p999 read off it
/// can be up to 2x away from the true sample. This variant splits every
/// octave `[2^m, 2^(m+1))` into 4 linear sub-buckets, bounding the relative
/// quantization error to ~25% while staying a fixed 252-slot array — small
/// enough to sit in per-core stats and cheap enough for the commit path.
/// Values 0..=3 get exact buckets.
///
/// # Example
/// ```
/// use row_common::stats::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [10u64, 20, 30, 40, 5000] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.percentile(0.5);
/// assert!((20..=40).contains(&p50), "p50 {p50}");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; LOG_HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for a sample.
    fn bucket(sample: u64) -> usize {
        if sample < LOG_HIST_SUBS as u64 {
            return sample as usize;
        }
        let msb = 63 - sample.leading_zeros() as usize;
        let sub = ((sample >> (msb - 2)) & 0b11) as usize;
        (msb - 1) * LOG_HIST_SUBS + sub
    }

    /// Inclusive upper bound of bucket `i` (the value `percentile` reports).
    fn bucket_upper(i: usize) -> u64 {
        if i < LOG_HIST_SUBS {
            return i as u64;
        }
        let msb = i / LOG_HIST_SUBS + 1;
        let sub = (i % LOG_HIST_SUBS) as u64;
        // Last sub-bucket of the top octave would overflow; saturate.
        let base = 1u128 << msb;
        let width = 1u128 << (msb - 2);
        let upper = base + width * (sub as u128 + 1) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: u64) {
        self.buckets[Self::bucket(sample)] += 1;
        self.count += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the sub-bucket containing the `q` quantile (`q` in
    /// \[0,1\]), clamped to the largest sample. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Codec for LogHistogram {
    fn encode(&self, w: &mut Writer) {
        self.buckets.encode(w);
        w.put_u64(self.count);
        w.put_u128(self.sum);
        w.put_u64(self.max);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let buckets = Vec::<u64>::decode(r)?;
        if buckets.len() != LOG_HIST_BUCKETS {
            return Err(PersistError::Corrupt("log histogram bucket count"));
        }
        Ok(LogHistogram {
            buckets,
            count: r.get_u64()?,
            sum: r.get_u128()?,
            max: r.get_u64()?,
        })
    }
}

/// The three-segment atomic latency breakdown of Fig. 6:
/// dispatch→issue, issue→lock, lock→unlock.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AtomicLatencyBreakdown {
    /// Cycles from dispatch until the atomic's memory request issues.
    pub dispatch_to_issue: RunningMean,
    /// Cycles from issue until the cacheline is locked in the L1D.
    pub issue_to_lock: RunningMean,
    /// Cycles the cacheline stays locked (lock until STU writes and unlocks).
    pub lock_to_unlock: RunningMean,
}

impl AtomicLatencyBreakdown {
    /// Creates an empty breakdown.
    pub const fn new() -> Self {
        AtomicLatencyBreakdown {
            dispatch_to_issue: RunningMean::new(),
            issue_to_lock: RunningMean::new(),
            lock_to_unlock: RunningMean::new(),
        }
    }

    /// Records one completed atomic.
    pub fn record(&mut self, dispatch_to_issue: u64, issue_to_lock: u64, lock_to_unlock: u64) {
        self.dispatch_to_issue.add(dispatch_to_issue);
        self.issue_to_lock.add(issue_to_lock);
        self.lock_to_unlock.add(lock_to_unlock);
    }

    /// Mean total dispatch→unlock latency.
    pub fn total_mean(&self) -> f64 {
        self.dispatch_to_issue.mean() + self.issue_to_lock.mean() + self.lock_to_unlock.mean()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &AtomicLatencyBreakdown) {
        self.dispatch_to_issue.merge(&other.dispatch_to_issue);
        self.issue_to_lock.merge(&other.issue_to_lock);
        self.lock_to_unlock.merge(&other.lock_to_unlock);
    }
}

impl fmt::Display for AtomicLatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d→i {:.1} | i→l {:.1} | l→u {:.1}",
            self.dispatch_to_issue.mean(),
            self.issue_to_lock.mean(),
            self.lock_to_unlock.mean()
        )
    }
}

/// Prediction-accuracy bookkeeping for Fig. 12.
///
/// A prediction is *correct* when the predicted class (contended or not)
/// matches the detector's outcome for that atomic instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AccuracyCounter {
    /// Predicted contended, detected contended.
    pub true_contended: u64,
    /// Predicted non-contended, detected non-contended.
    pub true_uncontended: u64,
    /// Predicted contended, detected non-contended.
    pub false_contended: u64,
    /// Predicted non-contended, detected contended.
    pub false_uncontended: u64,
}

impl AccuracyCounter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        AccuracyCounter {
            true_contended: 0,
            true_uncontended: 0,
            false_contended: 0,
            false_uncontended: 0,
        }
    }

    /// Records one (prediction, outcome) pair.
    pub fn record(&mut self, predicted_contended: bool, detected_contended: bool) {
        match (predicted_contended, detected_contended) {
            (true, true) => self.true_contended += 1,
            (false, false) => self.true_uncontended += 1,
            (true, false) => self.false_contended += 1,
            (false, true) => self.false_uncontended += 1,
        }
    }

    /// Total predictions recorded.
    pub const fn total(&self) -> u64 {
        self.true_contended + self.true_uncontended + self.false_contended + self.false_uncontended
    }

    /// Fraction of correct predictions, or 1.0 when nothing was recorded
    /// (an app with no atomics has a vacuously perfect predictor).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            (self.true_contended + self.true_uncontended) as f64 / t as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &AccuracyCounter) {
        self.true_contended += other.true_contended;
        self.true_uncontended += other.true_uncontended;
        self.false_contended += other.false_contended;
        self.false_uncontended += other.false_uncontended;
    }
}

/// Counters of the recoverable memory-system transport under lossy chaos.
///
/// Injection counters (`*_injected`) record what the fault model did to the
/// wire; recovery counters (`retries`, `nack_retransmits`, `dup_dropped`,
/// `corrupt_dropped`) record what the transport did about it. In a healthy
/// run `delivered == sent` (exactly-once delivery) and `giveups == 0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TransportStats {
    /// Logical messages submitted for sequenced delivery.
    pub sent: u64,
    /// Logical messages handed to a protocol endpoint (each exactly once).
    pub delivered: u64,
    /// Timeout-driven retransmissions.
    pub retries: u64,
    /// Retransmissions answered to a corruption NACK.
    pub nack_retransmits: u64,
    /// Transmissions the fault model dropped on the wire.
    pub drops_injected: u64,
    /// Transmissions the fault model duplicated on the wire.
    pub dups_injected: u64,
    /// Transmissions whose payload the fault model corrupted.
    pub corrupts_injected: u64,
    /// Arrivals discarded as duplicates (already delivered or buffered).
    pub dup_dropped: u64,
    /// Arrivals discarded on checksum mismatch (then NACKed).
    pub corrupt_dropped: u64,
    /// Acknowledgements sent by receivers.
    pub acks_sent: u64,
    /// Messages abandoned after the retransmission budget ran out. Any
    /// non-zero value is an error surfaced through the protocol-error path.
    pub giveups: u64,
}

impl TransportStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &TransportStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.retries += other.retries;
        self.nack_retransmits += other.nack_retransmits;
        self.drops_injected += other.drops_injected;
        self.dups_injected += other.dups_injected;
        self.corrupts_injected += other.corrupts_injected;
        self.dup_dropped += other.dup_dropped;
        self.corrupt_dropped += other.corrupt_dropped;
        self.acks_sent += other.acks_sent;
        self.giveups += other.giveups;
    }
}

impl Codec for TransportStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.sent);
        w.put_u64(self.delivered);
        w.put_u64(self.retries);
        w.put_u64(self.nack_retransmits);
        w.put_u64(self.drops_injected);
        w.put_u64(self.dups_injected);
        w.put_u64(self.corrupts_injected);
        w.put_u64(self.dup_dropped);
        w.put_u64(self.corrupt_dropped);
        w.put_u64(self.acks_sent);
        w.put_u64(self.giveups);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(TransportStats {
            sent: r.get_u64()?,
            delivered: r.get_u64()?,
            retries: r.get_u64()?,
            nack_retransmits: r.get_u64()?,
            drops_injected: r.get_u64()?,
            dups_injected: r.get_u64()?,
            corrupts_injected: r.get_u64()?,
            dup_dropped: r.get_u64()?,
            corrupt_dropped: r.get_u64()?,
            acks_sent: r.get_u64()?,
            giveups: r.get_u64()?,
        })
    }
}

impl Codec for RunningMean {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(self.sum);
        w.put_u64(self.count);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RunningMean {
            sum: r.get_u128()?,
            count: r.get_u64()?,
        })
    }
}

impl Codec for Histogram {
    fn encode(&self, w: &mut Writer) {
        self.buckets.encode(w);
        w.put_u64(self.count);
        w.put_u128(self.sum);
        w.put_u64(self.max);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Histogram {
            buckets: Vec::<u64>::decode(r)?,
            count: r.get_u64()?,
            sum: r.get_u128()?,
            max: r.get_u64()?,
        })
    }
}

impl Codec for AtomicLatencyBreakdown {
    fn encode(&self, w: &mut Writer) {
        self.dispatch_to_issue.encode(w);
        self.issue_to_lock.encode(w);
        self.lock_to_unlock.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(AtomicLatencyBreakdown {
            dispatch_to_issue: RunningMean::decode(r)?,
            issue_to_lock: RunningMean::decode(r)?,
            lock_to_unlock: RunningMean::decode(r)?,
        })
    }
}

impl Codec for AccuracyCounter {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.true_contended);
        w.put_u64(self.true_uncontended);
        w.put_u64(self.false_contended);
        w.put_u64(self.false_uncontended);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(AccuracyCounter {
            true_contended: r.get_u64()?,
            true_uncontended: r.get_u64()?,
            false_contended: r.get_u64()?,
            false_uncontended: r.get_u64()?,
        })
    }
}

/// Every scalar metric one sweep job produces, in a form that serializes
/// to the per-figure `BENCH_<fig>.json` records and parses back losslessly
/// (sweep resume re-renders cached jobs byte-identically to fresh runs).
///
/// This is the figure-facing projection of a simulation run: the sim crate
/// converts its `RunResult` into one of these, the bench harness formats
/// tables from them, and the sweep engine persists them.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct JobStats {
    /// Parallel-phase execution time in cycles.
    pub cycles: u64,
    /// Instructions committed, all cores.
    pub committed: u64,
    /// Atomic RMWs committed.
    pub atomics: u64,
    /// Atomics whose detector marked them contended.
    pub contended_atomics: u64,
    /// Atomics executed eagerly (includes locality-override flips).
    pub atomics_eager: u64,
    /// Atomics executed lazily.
    pub atomics_lazy: u64,
    /// Atomics fed by store→atomic forwarding.
    pub atomics_forwarded: u64,
    /// Predicted-lazy atomics flipped eager by the locality override.
    pub locality_overrides: u64,
    /// Fills served cache-to-cache from remote private caches.
    pub remote_fills: u64,
    /// Mean L1D miss latency in cycles (Fig. 11).
    pub miss_latency_mean: f64,
    /// Mean older not-yet-executed instructions at eager issue (Fig. 4).
    pub older_unexecuted_mean: f64,
    /// Mean younger already-started instructions at lazy issue (Fig. 4).
    pub younger_started_mean: f64,
    /// Mean dispatch→issue segment of the atomic latency (Fig. 6).
    pub breakdown_dispatch_to_issue: f64,
    /// Mean issue→lock segment (Fig. 6).
    pub breakdown_issue_to_lock: f64,
    /// Mean lock→unlock segment (Fig. 6).
    pub breakdown_lock_to_unlock: f64,
    /// Fraction of branch predictions that missed.
    pub branch_miss_rate: f64,
    /// RoW contention-prediction quadrants, when the RoW policy ran.
    pub accuracy: Option<AccuracyCounter>,
    /// Recoverable-transport counters, when the run used lossy chaos.
    pub transport: Option<TransportStats>,
}

impl JobStats {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Atomics per 10 000 committed instructions (Fig. 5).
    pub fn atomics_per_10k(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.atomics as f64 * 10_000.0 / self.committed as f64
        }
    }

    /// Fraction of atomics detected contended (Fig. 5).
    pub fn contended_fraction(&self) -> f64 {
        if self.atomics == 0 {
            0.0
        } else {
            self.contended_atomics as f64 / self.atomics as f64
        }
    }

    /// Mean dispatch→unlock atomic latency (Fig. 6 total).
    pub fn breakdown_total(&self) -> f64 {
        self.breakdown_dispatch_to_issue
            + self.breakdown_issue_to_lock
            + self.breakdown_lock_to_unlock
    }

    /// Timeout retries plus NACK retransmissions (0 without lossy chaos).
    pub fn transport_retries(&self) -> u64 {
        self.transport.map_or(0, |t| t.retries + t.nack_retransmits)
    }

    /// Serializes to one JSON object (no trailing newline), field order
    /// fixed so identical stats always render identically.
    pub fn to_json(&self) -> String {
        use crate::json::fmt_f64;
        let accuracy = match &self.accuracy {
            None => "null".to_string(),
            Some(a) => format!(
                "{{\"true_contended\": {}, \"true_uncontended\": {}, \"false_contended\": {}, \"false_uncontended\": {}}}",
                a.true_contended, a.true_uncontended, a.false_contended, a.false_uncontended
            ),
        };
        let transport = match &self.transport {
            None => "null".to_string(),
            Some(t) => format!(
                concat!(
                    "{{\"sent\": {}, \"delivered\": {}, \"retries\": {}, \"nack_retransmits\": {}, ",
                    "\"drops_injected\": {}, \"dups_injected\": {}, \"corrupts_injected\": {}, ",
                    "\"dup_dropped\": {}, \"corrupt_dropped\": {}, \"acks_sent\": {}, \"giveups\": {}}}"
                ),
                t.sent, t.delivered, t.retries, t.nack_retransmits,
                t.drops_injected, t.dups_injected, t.corrupts_injected,
                t.dup_dropped, t.corrupt_dropped, t.acks_sent, t.giveups
            ),
        };
        format!(
            concat!(
                "{{\"cycles\": {}, \"committed\": {}, \"atomics\": {}, \"contended_atomics\": {}, ",
                "\"atomics_eager\": {}, \"atomics_lazy\": {}, \"atomics_forwarded\": {}, ",
                "\"locality_overrides\": {}, \"remote_fills\": {}, ",
                "\"miss_latency_mean\": {}, \"older_unexecuted_mean\": {}, \"younger_started_mean\": {}, ",
                "\"breakdown_dispatch_to_issue\": {}, \"breakdown_issue_to_lock\": {}, ",
                "\"breakdown_lock_to_unlock\": {}, \"branch_miss_rate\": {}, ",
                "\"accuracy\": {}, \"transport\": {}}}"
            ),
            self.cycles,
            self.committed,
            self.atomics,
            self.contended_atomics,
            self.atomics_eager,
            self.atomics_lazy,
            self.atomics_forwarded,
            self.locality_overrides,
            self.remote_fills,
            fmt_f64(self.miss_latency_mean),
            fmt_f64(self.older_unexecuted_mean),
            fmt_f64(self.younger_started_mean),
            fmt_f64(self.breakdown_dispatch_to_issue),
            fmt_f64(self.breakdown_issue_to_lock),
            fmt_f64(self.breakdown_lock_to_unlock),
            fmt_f64(self.branch_miss_rate),
            accuracy,
            transport,
        )
    }

    /// Parses a [`JobStats::to_json`] object back.
    ///
    /// Returns `None` when any required field is missing or ill-typed (the
    /// caller treats that as "cell absent" and re-runs the job).
    pub fn from_json(v: &crate::json::Value) -> Option<JobStats> {
        let u = |k: &str| v.get(k).and_then(crate::json::Value::as_u64);
        let f = |k: &str| v.get(k).and_then(crate::json::Value::as_f64);
        let accuracy = match v.get("accuracy") {
            None | Some(crate::json::Value::Null) => None,
            Some(a) => {
                let q = |k: &str| a.get(k).and_then(crate::json::Value::as_u64);
                Some(AccuracyCounter {
                    true_contended: q("true_contended")?,
                    true_uncontended: q("true_uncontended")?,
                    false_contended: q("false_contended")?,
                    false_uncontended: q("false_uncontended")?,
                })
            }
        };
        let transport = match v.get("transport") {
            None | Some(crate::json::Value::Null) => None,
            Some(t) => {
                let q = |k: &str| t.get(k).and_then(crate::json::Value::as_u64);
                Some(TransportStats {
                    sent: q("sent")?,
                    delivered: q("delivered")?,
                    retries: q("retries")?,
                    nack_retransmits: q("nack_retransmits")?,
                    drops_injected: q("drops_injected")?,
                    dups_injected: q("dups_injected")?,
                    corrupts_injected: q("corrupts_injected")?,
                    dup_dropped: q("dup_dropped")?,
                    corrupt_dropped: q("corrupt_dropped")?,
                    acks_sent: q("acks_sent")?,
                    giveups: q("giveups")?,
                })
            }
        };
        Some(JobStats {
            cycles: u("cycles")?,
            committed: u("committed")?,
            atomics: u("atomics")?,
            contended_atomics: u("contended_atomics")?,
            atomics_eager: u("atomics_eager")?,
            atomics_lazy: u("atomics_lazy")?,
            atomics_forwarded: u("atomics_forwarded")?,
            locality_overrides: u("locality_overrides")?,
            remote_fills: u("remote_fills")?,
            miss_latency_mean: f("miss_latency_mean")?,
            older_unexecuted_mean: f("older_unexecuted_mean")?,
            younger_started_mean: f("younger_started_mean")?,
            breakdown_dispatch_to_issue: f("breakdown_dispatch_to_issue")?,
            breakdown_issue_to_lock: f("breakdown_issue_to_lock")?,
            breakdown_lock_to_unlock: f("breakdown_lock_to_unlock")?,
            branch_miss_rate: f("branch_miss_rate")?,
            accuracy,
            transport,
        })
    }
}

/// Geometric mean of a slice of ratios, ignoring non-positive entries.
/// Returns 1.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| **v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        1.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(4);
        m.add(8);
        assert_eq!(m.mean(), 6.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum(), 12);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        a.add(10);
        let mut b = RunningMean::new();
        b.add(20);
        b.add(30);
        a.merge(&b);
        assert_eq!(a.mean(), 20.0);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.add(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 0.01);
    }

    #[test]
    fn histogram_zero_sample_is_accepted() {
        let mut h = Histogram::new();
        h.add(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.add(v);
        }
        assert!(h.percentile(0.1) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(0.99));
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        a.add(10);
        let mut b = Histogram::new();
        b.add(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 20);
    }

    #[test]
    fn log_histogram_buckets_are_contiguous_and_ordered() {
        // Every sample must land in a bucket whose bounds contain it, and
        // bucket indices must be monotone in the sample value.
        let mut last = 0usize;
        for v in (0u64..4096).chain([u64::MAX / 2, u64::MAX]) {
            let b = LogHistogram::bucket(v);
            assert!(b >= last, "bucket index regressed at {v}");
            assert!(v <= LogHistogram::bucket_upper(b), "{v} above its bucket");
            last = b;
        }
        assert!(LogHistogram::bucket(u64::MAX) < LOG_HIST_BUCKETS);
    }

    #[test]
    fn log_histogram_percentiles_are_tight() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.add(v);
        }
        // Sub-bucketing bounds relative error to ~25%; the pow2 Histogram
        // would report up to 2x here.
        let p50 = h.percentile(0.5);
        assert!((500..=640).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(1.0), 1000);
        assert!(h.percentile(0.5) <= h.percentile(0.999));
        assert_eq!(LogHistogram::new().percentile(0.5), 0);
    }

    #[test]
    fn log_histogram_merge_and_roundtrip() {
        let mut a = LogHistogram::new();
        a.add(3);
        a.add(70);
        let mut b = LogHistogram::new();
        b.add(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5000);
        assert_eq!(crate::persist::roundtrip(&a).unwrap(), a);
    }

    #[test]
    fn breakdown_records_and_totals() {
        let mut b = AtomicLatencyBreakdown::new();
        b.record(10, 20, 30);
        b.record(20, 40, 60);
        assert_eq!(b.dispatch_to_issue.mean(), 15.0);
        assert_eq!(b.total_mean(), 15.0 + 30.0 + 45.0);
        assert!(!b.to_string().is_empty());
    }

    #[test]
    fn accuracy_counts_quadrants() {
        let mut a = AccuracyCounter::new();
        a.record(true, true);
        a.record(false, false);
        a.record(true, false);
        a.record(false, true);
        assert_eq!(a.total(), 4);
        assert_eq!(a.accuracy(), 0.5);
    }

    #[test]
    fn accuracy_empty_is_perfect() {
        assert_eq!(AccuracyCounter::new().accuracy(), 1.0);
    }

    #[test]
    fn transport_stats_merge_and_roundtrip() {
        let mut a = TransportStats {
            sent: 10,
            delivered: 10,
            retries: 3,
            nack_retransmits: 1,
            drops_injected: 2,
            dups_injected: 4,
            corrupts_injected: 1,
            dup_dropped: 4,
            corrupt_dropped: 1,
            acks_sent: 14,
            giveups: 0,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.sent, 20);
        assert_eq!(a.retries, 6);
        assert_eq!(crate::persist::roundtrip(&a).unwrap(), a);
    }

    #[test]
    fn job_stats_round_trip_through_json() {
        let s = JobStats {
            cycles: 123_456,
            committed: 48_000,
            atomics: 300,
            contended_atomics: 120,
            atomics_eager: 180,
            atomics_lazy: 120,
            atomics_forwarded: 7,
            locality_overrides: 3,
            remote_fills: 99,
            miss_latency_mean: 161.25,
            older_unexecuted_mean: 48.5,
            younger_started_mean: 1.0 / 3.0,
            breakdown_dispatch_to_issue: 10.125,
            breakdown_issue_to_lock: 0.0,
            breakdown_lock_to_unlock: 5e-3,
            branch_miss_rate: 0.0123,
            accuracy: Some(AccuracyCounter {
                true_contended: 1,
                true_uncontended: 2,
                false_contended: 3,
                false_uncontended: 4,
            }),
            transport: Some(TransportStats {
                sent: 10,
                delivered: 10,
                retries: 1,
                ..TransportStats::default()
            }),
        };
        let json = s.to_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        let back = JobStats::from_json(&v).expect("complete record");
        assert_eq!(back, s);
        // Re-serialization is byte-identical — what sweep resume relies on.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn job_stats_none_fields_and_derived_rates() {
        let s = JobStats {
            cycles: 100,
            committed: 250,
            atomics: 10,
            contended_atomics: 4,
            ..JobStats::default()
        };
        let v = crate::json::parse(&s.to_json()).unwrap();
        let back = JobStats::from_json(&v).unwrap();
        assert_eq!(back.accuracy, None);
        assert_eq!(back.transport, None);
        assert_eq!(back.transport_retries(), 0);
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.atomics_per_10k() - 400.0).abs() < 1e-12);
        assert!((s.contended_fraction() - 0.4).abs() < 1e-12);
        // Missing required field => None, not a panic.
        let broken = crate::json::parse("{\"cycles\": 1}").unwrap();
        assert!(JobStats::from_json(&broken).is_none());
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
        // Non-positive entries are ignored, not propagated as NaN.
        assert!((geomean(&[4.0, 0.0]) - 4.0).abs() < 1e-9);
    }
}
