//! Protocol transition-coverage map for the schedule fuzzer (`norush fuzz`).
//!
//! Every interesting protocol transition in the workspace maps to one slot in
//! a small, *exactly indexed* flat space — directory `(state, event)` pairs,
//! private-cache FSM `(state, event)` pairs, transport events, and CPU
//! atomic-queue / store-buffer edge events. Exact indexing (rather than an
//! opaque hash-only bitmap) is what lets the fuzz report *name* the
//! never-exercised pairs, doubling as a dead-protocol-arm report; the fnv1a
//! hashing the fuzzer uses for corpus dedup is computed over this bitmap via
//! [`CoverageMap::fingerprint`].
//!
//! Instrumented components record through the thread-local sink
//! ([`install`]/[`record`]/[`take`]) so hot-path handlers need no extra
//! plumbing; when no sink is installed (every non-fuzz run) [`record`] is a
//! cheap no-op and simulation results are unaffected.

use crate::persist::{Codec, PersistError, Reader, Writer};
use std::cell::RefCell;

/// Directory states a message can encounter (index into [`DIR_STATES`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirState {
    /// No sharer and no owner (the line lives only in the L3/memory).
    Uncached = 0,
    /// One or more read-only sharers.
    Shared = 1,
    /// A single exclusive owner.
    Exclusive = 2,
    /// Mid-transaction, waiting for the requester's `Unblock`.
    BlockedAwaitUnblock = 3,
    /// Mid-transaction, collecting invalidation acks.
    BlockedCollectingAcks = 4,
}

/// Message classes the directory dispatches on (index into [`DIR_EVENTS`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirEvent {
    /// Read (shared) request.
    GetS = 0,
    /// Write/RMW (exclusive) request.
    GetX = 1,
    /// Dirty writeback.
    PutM = 2,
    /// Far-atomic execute-at-home request.
    AtomicFar = 3,
    /// Transaction-completion unblock.
    Unblock = 4,
    /// Invalidation acknowledgement.
    InvAck = 5,
    /// Anything else (stray/unexpected at this state).
    Other = 6,
}

/// Private-cache line states (index into [`PRIV_STATES`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivState {
    /// Line not present (invalid).
    I = 0,
    /// Shared (read-only copy).
    S = 1,
    /// Exclusive clean.
    E = 2,
    /// Modified.
    M = 3,
    /// Eviction in flight (awaiting writeback ack).
    Evicting = 4,
}

/// Message classes the private cache dispatches on (index into [`PRIV_EVENTS`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivEvent {
    /// Invalidation request.
    Inv = 0,
    /// Forwarded read request (owner must downgrade).
    FwdGetS = 1,
    /// Forwarded exclusive request (owner must invalidate).
    FwdGetX = 2,
    /// Data fill.
    Data = 3,
    /// Writeback acknowledged.
    WbAck = 4,
    /// Writeback raced with an invalidation.
    WbStale = 5,
    /// Far atomic completed at the home.
    FarDone = 6,
    /// Anything else (stray/unexpected at this state).
    Other = 7,
}

/// Transport-layer events (index into [`TRANSPORT_EVENTS`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportEvent {
    /// A sequenced frame was transmitted.
    Send = 0,
    /// An in-order frame was delivered to the protocol.
    Deliver = 1,
    /// Fault injection dropped a transmission.
    Drop = 2,
    /// Fault injection duplicated a transmission.
    Dup = 3,
    /// A corrupt payload was detected by checksum (NACK sent).
    CorruptNack = 4,
    /// A timeout fired and the frame was retransmitted.
    Retransmit = 5,
    /// A cumulative ACK retired an in-flight frame.
    Ack = 6,
    /// A NACK triggered an immediate re-request.
    Nack = 7,
    /// The retransmit attempt budget was exhausted (give-up).
    GiveUp = 8,
    /// An out-of-order frame parked in the reorder buffer.
    ReorderBuffered = 9,
    /// A duplicate sequence number was discarded by the receiver.
    Dedup = 10,
    /// A schedule-perturbation burst delayed a delivery.
    BurstDelay = 11,
}

/// CPU atomic-queue / store-buffer edge events (index into [`CPU_EVENTS`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuEvent {
    /// An atomic issued eagerly to memory.
    EagerIssue = 0,
    /// A lazy atomic parked to wait for oldest+SB-drained.
    LazyWait = 1,
    /// A parked lazy atomic finally issued.
    LazyIssue = 2,
    /// An atomic load was satisfied by SB forwarding.
    Forwarded = 3,
    /// The locality override flipped a predicted-lazy atomic to eager.
    LocalityOverride = 4,
    /// A far atomic was shipped to the home directory.
    FarIssue = 5,
    /// A cache lock was acquired for a near atomic.
    LockAcquire = 6,
    /// A stolen locked line forced a re-request (lock reacquired).
    LockReacquire = 7,
    /// The store buffer fully drained with an atomic waiting.
    SbDrain = 8,
    /// The squash-and-retry deadlock breaker fired.
    DeadlockBreak = 9,
}

/// Printable directory state names, indexed by [`DirState`].
pub const DIR_STATES: &[&str] = &[
    "Uncached",
    "Shared",
    "Exclusive",
    "Blocked/AwaitUnblock",
    "Blocked/CollectingAcks",
];
/// Printable directory event names, indexed by [`DirEvent`].
pub const DIR_EVENTS: &[&str] = &[
    "GetS",
    "GetX",
    "PutM",
    "AtomicFar",
    "Unblock",
    "InvAck",
    "Other",
];
/// Printable private-cache state names, indexed by [`PrivState`].
pub const PRIV_STATES: &[&str] = &["I", "S", "E", "M", "Evicting"];
/// Printable private-cache event names, indexed by [`PrivEvent`].
pub const PRIV_EVENTS: &[&str] = &[
    "Inv", "FwdGetS", "FwdGetX", "Data", "WbAck", "WbStale", "FarDone", "Other",
];
/// Printable transport event names, indexed by [`TransportEvent`].
pub const TRANSPORT_EVENTS: &[&str] = &[
    "send",
    "deliver",
    "drop",
    "dup",
    "corrupt-nack",
    "retransmit",
    "ack",
    "nack",
    "give-up",
    "reorder-buffered",
    "dedup",
    "burst-delay",
];
/// Printable CPU event names, indexed by [`CpuEvent`].
pub const CPU_EVENTS: &[&str] = &[
    "eager-issue",
    "lazy-wait",
    "lazy-issue",
    "forwarded",
    "locality-override",
    "far-issue",
    "lock-acquire",
    "lock-reacquire",
    "sb-drain",
    "deadlock-break",
];

const DIR_BASE: usize = 0;
const DIR_COUNT: usize = 5 * 7;
const PRIV_BASE: usize = DIR_BASE + DIR_COUNT;
const PRIV_COUNT: usize = 5 * 8;
const TRANSPORT_BASE: usize = PRIV_BASE + PRIV_COUNT;
const TRANSPORT_COUNT: usize = 12;
const CPU_BASE: usize = TRANSPORT_BASE + TRANSPORT_COUNT;
const CPU_COUNT: usize = 10;
/// Total number of coverage slots.
pub const SLOT_COUNT: usize = CPU_BASE + CPU_COUNT;

/// Slot index of a directory `(state, event)` pair.
pub fn dir_slot(state: DirState, event: DirEvent) -> usize {
    DIR_BASE + state as usize * DIR_EVENTS.len() + event as usize
}

/// Slot index of a private-cache `(state, event)` pair.
pub fn priv_slot(state: PrivState, event: PrivEvent) -> usize {
    PRIV_BASE + state as usize * PRIV_EVENTS.len() + event as usize
}

/// Slot index of a transport event.
pub fn transport_slot(event: TransportEvent) -> usize {
    TRANSPORT_BASE + event as usize
}

/// Slot index of a CPU edge event.
pub fn cpu_slot(event: CpuEvent) -> usize {
    CPU_BASE + event as usize
}

/// Human-readable name of a slot, e.g. `dir:Shared/GetX` or `cpu:sb-drain`.
pub fn slot_name(slot: usize) -> String {
    if slot < PRIV_BASE {
        let i = slot - DIR_BASE;
        format!(
            "dir:{}/{}",
            DIR_STATES[i / DIR_EVENTS.len()],
            DIR_EVENTS[i % DIR_EVENTS.len()]
        )
    } else if slot < TRANSPORT_BASE {
        let i = slot - PRIV_BASE;
        format!(
            "cache:{}/{}",
            PRIV_STATES[i / PRIV_EVENTS.len()],
            PRIV_EVENTS[i % PRIV_EVENTS.len()]
        )
    } else if slot < CPU_BASE {
        format!("transport:{}", TRANSPORT_EVENTS[slot - TRANSPORT_BASE])
    } else {
        format!("cpu:{}", CPU_EVENTS[slot - CPU_BASE])
    }
}

/// Per-domain slot ranges as `(domain, base, count)` — the report's coverage
/// summary groups by these.
pub const DOMAINS: &[(&str, usize, usize)] = &[
    ("directory", DIR_BASE, DIR_COUNT),
    ("private-cache", PRIV_BASE, PRIV_COUNT),
    ("transport", TRANSPORT_BASE, TRANSPORT_COUNT),
    ("cpu", CPU_BASE, CPU_COUNT),
];

/// The transition-coverage map: a hit counter per slot.
///
/// The hit *bit* (count > 0) drives corpus-keeping decisions and the dead-arm
/// report; the counts feed the fuzzer's power schedule (rare transitions get
/// more mutation energy). Counts saturate rather than wrap so merging is
/// order-independent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoverageMap {
    hits: Vec<u64>,
}

impl CoverageMap {
    /// An empty map covering all [`SLOT_COUNT`] slots.
    pub fn new() -> Self {
        CoverageMap {
            hits: vec![0; SLOT_COUNT],
        }
    }

    /// Records one hit on `slot`.
    pub fn record(&mut self, slot: usize) {
        if let Some(h) = self.hits.get_mut(slot) {
            *h = h.saturating_add(1);
        }
    }

    /// Hit count of `slot` (0 when never exercised).
    pub fn hits(&self, slot: usize) -> u64 {
        self.hits.get(slot).copied().unwrap_or(0)
    }

    /// True when `slot` has been exercised at least once.
    pub fn is_hit(&self, slot: usize) -> bool {
        self.hits(slot) > 0
    }

    /// Number of slots exercised at least once.
    pub fn covered(&self) -> usize {
        self.hits.iter().filter(|&&h| h > 0).count()
    }

    /// Adds `other`'s hit counts into this map (saturating).
    pub fn merge(&mut self, other: &CoverageMap) {
        for (a, b) in self.hits.iter_mut().zip(&other.hits) {
            *a = a.saturating_add(*b);
        }
    }

    /// Number of slots hit in `self` but not in `global` — the "new coverage"
    /// signal deciding whether a fuzz schedule joins the corpus.
    pub fn new_slots_vs(&self, global: &CoverageMap) -> usize {
        self.hits
            .iter()
            .zip(&global.hits)
            .filter(|&(&mine, &theirs)| mine > 0 && theirs == 0)
            .count()
    }

    /// Names of every never-exercised slot, in slot order.
    pub fn uncovered_names(&self) -> Vec<String> {
        (0..SLOT_COUNT)
            .filter(|&s| !self.is_hit(s))
            .map(slot_name)
            .collect()
    }

    /// Per-domain `(domain, covered, total)` summary.
    pub fn domain_summary(&self) -> Vec<(&'static str, usize, usize)> {
        DOMAINS
            .iter()
            .map(|&(name, base, count)| {
                let covered = (base..base + count).filter(|&s| self.is_hit(s)).count();
                (name, covered, count)
            })
            .collect()
    }

    /// FNV-1a hash over the hit *bitmap* (not the counts): two runs lighting
    /// the same transition set fingerprint equally even if hit totals differ.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = vec![0u8; SLOT_COUNT.div_ceil(8)];
        for (slot, &h) in self.hits.iter().enumerate() {
            if h > 0 {
                bytes[slot / 8] |= 1 << (slot % 8);
            }
        }
        crate::persist::fnv1a(&bytes)
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl Codec for CoverageMap {
    fn encode(&self, w: &mut Writer) {
        self.hits.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let hits = Vec::<u64>::decode(r)?;
        if hits.len() != SLOT_COUNT {
            return Err(PersistError::Corrupt("coverage map slot count"));
        }
        Ok(CoverageMap { hits })
    }
}

thread_local! {
    static SINK: RefCell<Option<CoverageMap>> = const { RefCell::new(None) };
}

/// Installs a fresh coverage sink on this thread. Subsequent [`record`] calls
/// accumulate into it until [`take`].
pub fn install() {
    SINK.with(|s| *s.borrow_mut() = Some(CoverageMap::new()));
}

/// Records a hit on `slot` into this thread's sink, if one is installed.
/// A no-op (one thread-local read) otherwise.
pub fn record(slot: usize) {
    SINK.with(|s| {
        if let Some(map) = s.borrow_mut().as_mut() {
            map.record(slot);
        }
    });
}

/// Removes and returns this thread's sink, ending collection.
pub fn take() -> Option<CoverageMap> {
    SINK.with(|s| s.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{Reader, Writer};

    #[test]
    fn slot_space_is_dense_and_named() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..SLOT_COUNT {
            assert!(seen.insert(slot_name(s)), "duplicate name for slot {s}");
        }
        assert_eq!(
            slot_name(dir_slot(DirState::Shared, DirEvent::GetX)),
            "dir:Shared/GetX"
        );
        assert_eq!(
            slot_name(priv_slot(PrivState::M, PrivEvent::FwdGetS)),
            "cache:M/FwdGetS"
        );
        assert_eq!(
            slot_name(transport_slot(TransportEvent::GiveUp)),
            "transport:give-up"
        );
        assert_eq!(slot_name(cpu_slot(CpuEvent::SbDrain)), "cpu:sb-drain");
        let (_, base, count) = *DOMAINS.last().unwrap();
        assert_eq!(base + count, SLOT_COUNT);
    }

    #[test]
    fn record_merge_and_new_slots() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        a.record(3);
        a.record(3);
        b.record(3);
        b.record(7);
        assert_eq!(a.covered(), 1);
        assert_eq!(b.new_slots_vs(&a), 1);
        assert_eq!(a.new_slots_vs(&b), 0);
        a.merge(&b);
        assert_eq!(a.hits(3), 3);
        assert_eq!(a.hits(7), 1);
        assert_eq!(a.covered(), 2);
    }

    #[test]
    fn fingerprint_ignores_counts() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        a.record(5);
        b.record(5);
        b.record(5);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(6);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn codec_roundtrip() {
        let mut m = CoverageMap::new();
        m.record(0);
        m.record(SLOT_COUNT - 1);
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = CoverageMap::decode(&mut r).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn thread_local_sink() {
        assert!(take().is_none());
        record(1); // no sink installed: no-op
        install();
        record(1);
        record(2);
        let map = take().unwrap();
        assert_eq!(map.covered(), 2);
        assert!(take().is_none());
    }

    #[test]
    fn uncovered_names_shrink_as_slots_light_up() {
        let mut m = CoverageMap::new();
        assert_eq!(m.uncovered_names().len(), SLOT_COUNT);
        m.record(dir_slot(DirState::Uncached, DirEvent::GetS));
        let names = m.uncovered_names();
        assert_eq!(names.len(), SLOT_COUNT - 1);
        assert!(!names.contains(&"dir:Uncached/GetS".to_string()));
    }
}
