//! Shared foundations for the `norush` simulator workspace.
//!
//! This crate contains everything the other crates agree on:
//!
//! * [`ids`] — strongly-typed identifiers ([`ids::CoreId`], [`ids::Addr`],
//!   [`ids::LineAddr`], …).
//! * [`clock`] — the global [`clock::Cycle`] time base.
//! * [`config`] — the full system configuration, including the paper's
//!   Table I parameters via [`SystemConfig::alder_lake_32c`][config::SystemConfig::alder_lake_32c].
//! * [`rng`] — a small deterministic [`SplitMix64`][rng::SplitMix64] PRNG so
//!   simulations are reproducible bit-for-bit.
//! * [`stats`] — counters, histograms and latency-breakdown accumulators used
//!   to regenerate the paper's figures.
//! * [`sched`] — a generic cycle-keyed event wheel used by the memory system.
//! * [`fastmap`] — an open-addressed, arena-backed hash map with
//!   deterministic iteration order for the simulation hot paths.
//! * [`persist`] — the versioned binary snapshot codec
//!   ([`Codec`][persist::Codec]/[`Persist`][persist::Persist]) behind
//!   deterministic checkpoint/restore.
//! * [`json`] — a minimal JSON reader/writer backing the per-figure
//!   `BENCH_<fig>.json` results files and sweep resume.
//! * [`coverage`] — the protocol transition-coverage map driving the
//!   schedule fuzzer (`norush fuzz`) and its dead-protocol-arm report.
//! * [`choice`] — thread-local decision-point hooks (message delivery,
//!   atomic commit timing) behind the bounded-exhaustive schedule explorer
//!   (`norush explore`).
//!
//! # Example
//!
//! ```
//! use row_common::config::SystemConfig;
//!
//! let cfg = SystemConfig::alder_lake_32c();
//! assert_eq!(cfg.cores, 32);
//! assert_eq!(cfg.core.rob_entries, 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choice;
pub mod clock;
pub mod config;
pub mod coverage;
pub mod fastmap;
pub mod ids;
pub mod json;
pub mod persist;
pub mod rmw;
pub mod rng;
pub mod sched;
pub mod stats;

pub use clock::Cycle;
pub use config::SystemConfig;
pub use ids::{Addr, CoreId, LineAddr, Pc};
