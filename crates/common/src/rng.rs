//! Deterministic pseudo-random number generation.
//!
//! Simulations must be bit-for-bit reproducible across runs and platforms, so
//! workload generators use this self-contained [`SplitMix64`] generator
//! (Steele, Lea & Flood, OOPSLA 2014) rather than a platform-seeded source.

/// A SplitMix64 pseudo-random generator.
///
/// Fast, tiny state, passes BigCrush when used as a 64-bit stream; more than
/// adequate for workload-shape decisions.
///
/// # Example
/// ```
/// use row_common::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A geometrically distributed gap with mean `mean` (>= 1), used for
    /// spacing events (e.g. atomics) in instruction streams.
    pub fn geometric_gap(&mut self, mean: f64) -> u64 {
        let mean = mean.max(1.0);
        let p = 1.0 / mean;
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor();
        1 + g as u64
    }

    /// Derives an independent child generator (for per-thread streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// A Zipf-distributed sampler over `[0, n)` (YCSB-style, Gray et al.).
///
/// Rank 0 is the most popular key; `theta` controls skew (0 = uniform,
/// 0.99 = the YCSB default "hotspot" skew). Construction is O(n) (zeta
/// precomputation); sampling is O(1). The sampler is a pure function of
/// `(n, theta)` plus the caller's RNG, so streams that persist their RNG
/// state can rebuild the sampler from config instead of serializing it.
///
/// # Example
/// ```
/// use row_common::rng::{SplitMix64, ZipfSampler};
/// let zipf = ZipfSampler::new(100, 0.99);
/// let mut rng = SplitMix64::new(1);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `[0, n)` with skew `theta` in `[0, 1)∪(1, ∞)`.
    /// `theta` exactly 1.0 is nudged (the closed form has a pole there).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty key space");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf theta {theta} out of range"
        );
        let theta = if (theta - 1.0).abs() < 1e-9 {
            1.0 - 1e-9
        } else {
            theta
        };
        let zeta = |m: u64| -> f64 { (1..=m).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(n);
        let zeta2 = zeta(n.min(2));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of keys in the sampled space.
    pub const fn len(&self) -> u64 {
        self.n
    }

    /// `true` when the key space is a single key.
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// The (possibly nudged) skew parameter.
    pub const fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one key rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.n == 1 {
            // Keep the RNG stream advancing identically regardless of n.
            let _ = rng.next_u64();
            return 0;
        }
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

impl crate::persist::Codec for SplitMix64 {
    fn encode(&self, w: &mut crate::persist::Writer) {
        w.put_u64(self.state);
    }
    fn decode(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        Ok(SplitMix64 {
            state: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(6);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_gap_mean_is_close() {
        let mut r = SplitMix64::new(8);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric_gap(10.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((8.0..12.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = SplitMix64::new(11);
        let mut counts = [0u64; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "key {k} drawn {c} times");
        }
    }

    #[test]
    fn zipf_high_theta_concentrates_on_hot_keys() {
        let zipf = ZipfSampler::new(1000, 0.99);
        let mut rng = SplitMix64::new(12);
        let hot = (0..10_000).filter(|_| zipf.sample(&mut rng) < 10).count();
        // Under uniform, the top 10 of 1000 keys would get ~1% of draws;
        // YCSB-skew gives them roughly half.
        assert!(hot > 3000, "only {hot} of 10000 draws hit the top 10 keys");
    }

    #[test]
    fn zipf_is_deterministic_and_in_range() {
        let zipf = ZipfSampler::new(64, 0.99);
        let mut a = SplitMix64::new(13);
        let mut b = SplitMix64::new(13);
        for _ in 0..1000 {
            let x = zipf.sample(&mut a);
            assert_eq!(x, zipf.sample(&mut b));
            assert!(x < 64);
        }
        // theta == 1.0 is nudged off the pole, not a panic.
        let z1 = ZipfSampler::new(8, 1.0);
        assert!(z1.theta() < 1.0);
        let mut r = SplitMix64::new(14);
        assert!(z1.sample(&mut r) < 8);
        // A single-key space always returns 0 but still consumes RNG.
        let z = ZipfSampler::new(1, 0.5);
        let before = r.clone();
        assert_eq!(z.sample(&mut r), 0);
        assert_ne!(r, before);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(9);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
