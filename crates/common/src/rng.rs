//! Deterministic pseudo-random number generation.
//!
//! Simulations must be bit-for-bit reproducible across runs and platforms, so
//! workload generators use this self-contained [`SplitMix64`] generator
//! (Steele, Lea & Flood, OOPSLA 2014) rather than a platform-seeded source.

/// A SplitMix64 pseudo-random generator.
///
/// Fast, tiny state, passes BigCrush when used as a 64-bit stream; more than
/// adequate for workload-shape decisions.
///
/// # Example
/// ```
/// use row_common::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A geometrically distributed gap with mean `mean` (>= 1), used for
    /// spacing events (e.g. atomics) in instruction streams.
    pub fn geometric_gap(&mut self, mean: f64) -> u64 {
        let mean = mean.max(1.0);
        let p = 1.0 / mean;
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor();
        1 + g as u64
    }

    /// Derives an independent child generator (for per-thread streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl crate::persist::Codec for SplitMix64 {
    fn encode(&self, w: &mut crate::persist::Writer) {
        w.put_u64(self.state);
    }
    fn decode(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        Ok(SplitMix64 {
            state: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(6);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_gap_mean_is_close() {
        let mut r = SplitMix64::new(8);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric_gap(10.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((8.0..12.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(9);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
