//! Property tests for the shared foundations.

use proptest::prelude::*;
use row_common::clock::{Cycle, TIMESTAMP_MODULUS};
use row_common::rng::SplitMix64;
use row_common::sched::EventQueue;
use row_common::stats::{Histogram, RunningMean};

proptest! {
    /// Events always pop in nondecreasing cycle order, FIFO within a cycle.
    #[test]
    fn event_queue_orders_any_schedule(pushes in prop::collection::vec((0u64..1000, 0u32..100), 1..200)) {
        let mut q = EventQueue::new();
        for (i, &(at, tag)) in pushes.iter().enumerate() {
            q.push(Cycle::new(at), (at, i, tag));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((at, i, _)) = q.pop_ready(Cycle::new(1000)) {
            if let Some((pat, pi)) = last {
                prop_assert!(at > pat || (at == pat && i > pi),
                    "out of order: ({at},{i}) after ({pat},{pi})");
            }
            last = Some((at, i));
            popped += 1;
        }
        prop_assert_eq!(popped, pushes.len());
    }

    /// The 14-bit latency equals the true latency modulo 2^14 for any pair.
    #[test]
    fn timestamp14_latency_is_mod_2_14(issue in 0u64..1u64<<40, delta in 0u64..1u64<<20) {
        let issued = Cycle::new(issue);
        let fill = Cycle::new(issue + delta);
        prop_assert_eq!(
            fill.latency_since14(issued.timestamp14()),
            delta % TIMESTAMP_MODULUS
        );
    }

    /// Histogram moments agree with a direct computation.
    #[test]
    fn histogram_moments_match_naive(samples in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        let mut m = RunningMean::new();
        for &s in &samples {
            h.add(s);
            m.add(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert!((h.mean() - m.mean()).abs() < 1e-6);
        // Percentiles are monotone and bounded by the bucket above the max.
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        prop_assert!(p50 <= p99);
    }

    /// `below(n)` is always `< n`, for any seed.
    #[test]
    fn rng_below_is_bounded(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Split streams never equal their parent's continuation.
    #[test]
    fn rng_split_diverges(seed in any::<u64>()) {
        let mut parent = SplitMix64::new(seed);
        let mut child = parent.split();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        prop_assert_ne!(a, b);
    }
}
