//! Randomized property tests for the shared foundations.
//!
//! These were originally written against `proptest`; they now drive the same
//! assertions from the crate's own deterministic [`SplitMix64`] so the suite
//! builds with no external dependencies (the build environment is offline).

use row_common::clock::{Cycle, TIMESTAMP_MODULUS};
use row_common::rng::SplitMix64;
use row_common::sched::EventQueue;
use row_common::stats::{Histogram, RunningMean};

/// Events always pop in nondecreasing cycle order, FIFO within a cycle.
#[test]
fn event_queue_orders_any_schedule() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for _ in 0..64 {
        let n = 1 + rng.below(200) as usize;
        let pushes: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.below(1000), rng.below(100) as u32))
            .collect();
        let mut q = EventQueue::new();
        for (i, &(at, tag)) in pushes.iter().enumerate() {
            q.push(Cycle::new(at), (at, i, tag));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((at, i, _)) = q.pop_ready(Cycle::new(1000)) {
            if let Some((pat, pi)) = last {
                assert!(
                    at > pat || (at == pat && i > pi),
                    "out of order: ({at},{i}) after ({pat},{pi})"
                );
            }
            last = Some((at, i));
            popped += 1;
        }
        assert_eq!(popped, pushes.len());
    }
}

/// The 14-bit latency equals the true latency modulo 2^14 for any pair.
#[test]
fn timestamp14_latency_is_mod_2_14() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for _ in 0..256 {
        let issue = rng.below(1u64 << 40);
        let delta = rng.below(1u64 << 20);
        let issued = Cycle::new(issue);
        let fill = Cycle::new(issue + delta);
        assert_eq!(
            fill.latency_since14(issued.timestamp14()),
            delta % TIMESTAMP_MODULUS
        );
    }
}

/// Histogram moments agree with a direct computation.
#[test]
fn histogram_moments_match_naive() {
    let mut rng = SplitMix64::new(0x5eed_0003);
    for _ in 0..64 {
        let n = 1 + rng.below(300) as usize;
        let samples: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut h = Histogram::new();
        let mut m = RunningMean::new();
        for &s in &samples {
            h.add(s);
            m.add(s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.max(), *samples.iter().max().unwrap());
        assert!((h.mean() - m.mean()).abs() < 1e-6);
        // Percentiles are monotone and bounded by the bucket above the max.
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
    }
}

/// `below(n)` is always `< n`, for any seed.
#[test]
fn rng_below_is_bounded() {
    let mut seeder = SplitMix64::new(0x5eed_0004);
    for _ in 0..64 {
        let seed = seeder.next_u64();
        let bound = 1 + seeder.below(1_000_000);
        let mut r = SplitMix64::new(seed);
        for _ in 0..50 {
            assert!(r.below(bound) < bound);
        }
    }
}

/// Split streams never equal their parent's continuation.
#[test]
fn rng_split_diverges() {
    let mut seeder = SplitMix64::new(0x5eed_0005);
    for _ in 0..64 {
        let mut parent = SplitMix64::new(seeder.next_u64());
        let mut child = parent.split();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
