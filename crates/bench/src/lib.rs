//! Shared scaffolding for the figure-regeneration harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation by declaring a [`Sweep`] and handing it to
//! [`run_sweep`], which executes the grid on a worker pool and writes the
//! unified `BENCH_<figure>.json` results file next to the human table.
//!
//! The scale is selected by the `NORUSH_SCALE` environment variable:
//!
//! * `quick` (default) — 8 cores, small caches, 6 k instructions/thread;
//!   each figure takes seconds.
//! * `mid` — 16 cores, Table I hierarchy, 10 k instructions/thread.
//! * `paper` — 32 cores with the Table I hierarchy, 20 k
//!   instructions/thread; minutes per figure.
//! * `huge` — 64 cores (base; `fig_scale` sweeps 64/128/256) with the
//!   Table I per-core hierarchy on the scale-out mesh.
//!
//! Parallelism and resume are controlled per invocation:
//!
//! * `--jobs N` / `NORUSH_JOBS` — worker threads (default: all host cores).
//! * `--resume` / `NORUSH_RESUME=1` — skip cells already present in the
//!   figure's `BENCH_<figure>.json` under matching config fingerprints.
//! * `NORUSH_CKPT_DIR` (+ optional `NORUSH_CKPT_EVERY`) — per-cell machine
//!   checkpointing for crash resilience inside long cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use row_sim::{
    available_workers, ExperimentConfig, FigureResults, Sweep, SweepCheckpoint, SweepEvent,
    SweepOptions,
};
use row_workloads::Benchmark;

/// Upper bound on `--jobs`; far beyond any host, it only exists so a typo
/// like `--jobs 80000` fails loudly instead of spawning a thread herd.
pub const MAX_JOBS: usize = 4096;

/// The experiment scale selected through `NORUSH_SCALE`.
pub fn scale() -> ExperimentConfig {
    match std::env::var("NORUSH_SCALE").as_deref() {
        Ok("paper") => ExperimentConfig::paper(),
        Ok("huge") => ExperimentConfig {
            cores: 64,
            instructions: 20_000,
            seed: 42,
            cycle_limit: 400_000_000,
            paper_caches: true,
            check: Default::default(),
        },
        Ok("mid") => ExperimentConfig {
            cores: 16,
            instructions: 10_000,
            seed: 42,
            cycle_limit: 200_000_000,
            paper_caches: true,
            check: Default::default(),
        },
        _ => {
            let mut e = ExperimentConfig::quick();
            e.instructions = 6_000;
            e
        }
    }
}

/// Prints a figure header with the active scale.
pub fn banner(fig: &str, what: &str) {
    let exp = scale();
    println!("== {fig}: {what} ==");
    println!(
        "   scale: {} cores, {} instructions/thread ({} caches) — set NORUSH_SCALE=quick|mid|paper|huge\n",
        exp.cores,
        exp.instructions,
        if exp.paper_caches { "Table I" } else { "scaled" }
    );
}

/// Sweep execution options parsed from the command line and environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepCli {
    /// Worker threads for [`run_sweep`].
    pub workers: usize,
    /// Whether to reuse matching cells from an existing results file.
    pub resume: bool,
}

/// Parses `--jobs N` / `--resume` from `args` with environment fallbacks
/// (`NORUSH_JOBS`, `NORUSH_RESUME`). Exposed for testing; binaries go
/// through [`sweep_cli`].
///
/// # Errors
/// A printable message for unknown flags, non-numeric worker counts, or
/// counts outside `[1, MAX_JOBS]`.
pub fn parse_sweep_cli(
    args: &[String],
    env_jobs: Option<&str>,
    env_resume: bool,
) -> Result<SweepCli, String> {
    let parse_jobs = |source: &str, v: &str| -> Result<usize, String> {
        let n: usize = v
            .parse()
            .map_err(|e| format!("{source}: `{v}` is not a worker count ({e})"))?;
        if !(1..=MAX_JOBS).contains(&n) {
            return Err(format!(
                "{source}: {n} out of range [1, {MAX_JOBS}] (need at least one worker)"
            ));
        }
        Ok(n)
    };
    let mut workers = match env_jobs {
        Some(v) => parse_jobs("NORUSH_JOBS", v)?,
        None => available_workers(),
    };
    let mut resume = env_resume;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().ok_or("--jobs: missing worker count")?;
            workers = parse_jobs("--jobs", v)?;
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            workers = parse_jobs("--jobs", v)?;
        } else if a == "--resume" {
            resume = true;
        } else {
            return Err(format!(
                "`{a}`: unknown argument (figure binaries take --jobs N and --resume)"
            ));
        }
    }
    Ok(SweepCli { workers, resume })
}

/// [`parse_sweep_cli`] over the process arguments and environment, exiting
/// with status 2 (usage error) on invalid input.
pub fn sweep_cli() -> SweepCli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env_jobs = std::env::var("NORUSH_JOBS").ok();
    let env_resume = std::env::var("NORUSH_RESUME").is_ok_and(|v| v == "1");
    parse_sweep_cli(&args, env_jobs.as_deref(), env_resume).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Per-cell machine checkpointing from `NORUSH_CKPT_DIR` /
/// `NORUSH_CKPT_EVERY` (default every 1 M cycles when a directory is set).
fn checkpoint_from_env() -> Option<SweepCheckpoint> {
    let dir = std::env::var("NORUSH_CKPT_DIR").ok()?;
    let every = std::env::var("NORUSH_CKPT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000u64)
        .max(1);
    std::fs::create_dir_all(&dir).ok()?;
    Some(SweepCheckpoint {
        every,
        dir: PathBuf::from(dir),
    })
}

/// Executes a figure's sweep with the CLI/environment options, streaming
/// per-job progress to stderr and persisting `BENCH_<figure>.json`
/// incrementally. Exits with status 1 if any job fails (after the engine's
/// raised-budget timeout retry).
pub fn run_sweep(sweep: &Sweep) -> FigureResults {
    let cli = sweep_cli();
    let path = PathBuf::from(format!("BENCH_{}.json", sweep.figure));
    let total = sweep.jobs.len();
    eprintln!(
        "   sweep: {} jobs on {} workers{}",
        total,
        cli.workers.min(total.max(1)),
        if cli.resume { ", resume on" } else { "" }
    );
    let done = AtomicUsize::new(0);
    let progress = |ev: &SweepEvent<'_>| match *ev {
        SweepEvent::Finished {
            label,
            wall_s,
            retried,
            ..
        } => {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "   [{k}/{total}] {label}  {wall_s:.1}s{}",
                if retried {
                    "  (retried, 4x budget)"
                } else {
                    ""
                }
            );
        }
        SweepEvent::Cached { label, .. } => {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!("   [{k}/{total}] {label}  (cached)");
        }
        SweepEvent::Started { .. } => {}
    };
    let opts = SweepOptions {
        workers: cli.workers,
        retry_timeouts: true,
        results_path: Some(path.clone()),
        resume: cli.resume,
        checkpoint: checkpoint_from_env(),
        progress: Some(&progress),
    };
    match sweep.run(&opts) {
        Ok(r) => {
            eprintln!("   wrote {}\n", path.display());
            r
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    }
}

/// A cell's cycles normalized to a baseline variant on the same benchmark
/// (grid labels, i.e. `"<bench>/<variant>"`).
///
/// # Panics
/// When either label is missing from the results.
pub fn norm(r: &FigureResults, bench: Benchmark, variant: &str, baseline: &str) -> f64 {
    r.cycles(&format!("{}/{variant}", bench.name()))
        / r.cycles(&format!("{}/{baseline}", bench.name()))
}

/// Geometric mean of [`norm`] across `benches`.
pub fn geomean_norm(
    r: &FigureResults,
    benches: &[Benchmark],
    variant: &str,
    baseline: &str,
) -> f64 {
    let ratios: Vec<f64> = benches
        .iter()
        .map(|&b| norm(r, b, variant, baseline))
        .collect();
    row_common::stats::geomean(&ratios)
}

/// A plain-text table: auto-sized columns, first column left-aligned, the
/// rest right-aligned — the shared formatter behind every figure's output.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// When the cell count does not match the header count.
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        widths[0] = widths[0].max(15);
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for line in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in line.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[0]));
                } else {
                    out.push_str(&format!(" {:>w$}", cell, w = widths[i]));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        if std::env::var("NORUSH_SCALE").is_err() {
            assert_eq!(scale().cores, 8);
        }
    }

    #[test]
    fn sweep_cli_defaults_and_flags() {
        let d = parse_sweep_cli(&[], None, false).expect("defaults parse");
        assert!(d.workers >= 1);
        assert!(!d.resume);
        let j = parse_sweep_cli(
            &["--jobs".into(), "3".into(), "--resume".into()],
            None,
            false,
        )
        .expect("flags parse");
        assert_eq!(
            j,
            SweepCli {
                workers: 3,
                resume: true
            }
        );
        let env = parse_sweep_cli(&[], Some("5"), true).expect("env parses");
        assert_eq!(
            env,
            SweepCli {
                workers: 5,
                resume: true
            }
        );
        // The flag wins over the environment.
        let both = parse_sweep_cli(&["--jobs".into(), "2".into()], Some("5"), false).expect("both");
        assert_eq!(both.workers, 2);
    }

    #[test]
    fn sweep_cli_rejects_bad_jobs() {
        let zero = parse_sweep_cli(&["--jobs".into(), "0".into()], None, false);
        assert!(zero.unwrap_err().contains("out of range [1,"));
        let nan = parse_sweep_cli(&["--jobs".into(), "many".into()], None, false);
        assert!(nan.unwrap_err().contains("not a worker count"));
        let env = parse_sweep_cli(&[], Some("0"), false);
        assert!(env.unwrap_err().starts_with("NORUSH_JOBS"));
        let unknown = parse_sweep_cli(&["--frobnicate".into()], None, false);
        assert!(unknown.unwrap_err().contains("unknown argument"));
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["benchmark", "lazy/eager"]);
        t.row(["pc", "1.234"]);
        t.row(["a-very-long-benchmark-name", "0.9"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("benchmark"));
        assert!(lines[1].ends_with("1.234"));
        // Right-aligned numeric column: both value lines end at the same
        // character position.
        assert_eq!(lines[1].len(), lines[2].len());
    }
}
