//! Shared scaffolding for the figure-regeneration harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation. The scale is selected by the `NORUSH_SCALE`
//! environment variable:
//!
//! * `quick` (default) — 8 cores, small caches, 6 k instructions/thread;
//!   each figure takes seconds.
//! * `mid` — 16 cores, Table I hierarchy, 10 k instructions/thread.
//! * `paper` — 32 cores with the Table I hierarchy, 20 k
//!   instructions/thread; minutes per figure.
//!
//! Independent simulation runs are fanned out over worker threads by
//! [`parallel_map`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use row_sim::ExperimentConfig;

/// The experiment scale selected through `NORUSH_SCALE`.
pub fn scale() -> ExperimentConfig {
    match std::env::var("NORUSH_SCALE").as_deref() {
        Ok("paper") => ExperimentConfig::paper(),
        Ok("mid") => ExperimentConfig {
            cores: 16,
            instructions: 10_000,
            seed: 42,
            cycle_limit: 200_000_000,
            paper_caches: true,
            check: Default::default(),
        },
        _ => {
            let mut e = ExperimentConfig::quick();
            e.instructions = 6_000;
            e
        }
    }
}

/// Runs `f` over `items` on up to `std::thread::available_parallelism`
/// workers, returning results in input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let results: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("worker filled"))
        .collect()
}

/// Prints a figure header with the active scale.
pub fn banner(fig: &str, what: &str) {
    let exp = scale();
    println!("== {fig}: {what} ==");
    println!(
        "   scale: {} cores, {} instructions/thread ({} caches) — set NORUSH_SCALE=quick|mid|paper\n",
        exp.cores,
        exp.instructions,
        if exp.paper_caches { "Table I" } else { "scaled" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        if std::env::var("NORUSH_SCALE").is_err() {
            assert_eq!(scale().cores, 8);
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }
}
