//! Fig. 10: sensitivity of the RW+Dir contention detector to the latency
//! threshold (0 … 2000 cycles, plus "inf").

use row_bench::{banner, parallel_map, scale};
use row_common::config::{AtomicPolicy, DetectorKind, PredictorKind, RowConfig};
use row_sim::{run_benchmark, run_eager};
use row_workloads::Benchmark;

const THRESHOLDS: [u64; 6] = [0, 100, 400, 1000, 2000, u64::MAX];

fn main() {
    banner("Fig. 10", "RW+Dir latency-threshold sweep (U/D predictor)");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let rows = parallel_map(benches, |&b| {
        let e = run_eager(b, &exp).expect("eager").cycles as f64;
        let vs: Vec<f64> = THRESHOLDS
            .iter()
            .map(|&t| {
                let cfg = RowConfig::new(
                    DetectorKind::ReadyWindowDir {
                        latency_threshold: t,
                    },
                    PredictorKind::UpDown,
                );
                run_benchmark(b, AtomicPolicy::Row(cfg), false, &exp)
                    .expect("row")
                    .cycles as f64
                    / e
            })
            .collect();
        (b, vs)
    });
    print!("{:15}", "benchmark");
    for t in THRESHOLDS {
        if t == u64::MAX {
            print!(" {:>8}", "inf");
        } else {
            print!(" {:>8}", t);
        }
    }
    println!();
    let mut sums = vec![0.0; THRESHOLDS.len()];
    for (b, vs) in &rows {
        print!("{:15}", b.name());
        for (i, v) in vs.iter().enumerate() {
            print!(" {:>8.3}", v);
            sums[i] += v.ln();
        }
        println!();
    }
    print!("{:15}", "geomean");
    for s in sums {
        print!(" {:>8.3}", (s / rows.len() as f64).exp());
    }
    println!("\n\npaper: optimum at 400; 400→2000 nearly flat; 0 penalizes canneal-like apps.");
}
