//! Fig. 10: sensitivity of the RW+Dir contention detector to the latency
//! threshold (0 … 2000 cycles, plus "inf").

use row_bench::{banner, geomean_norm, norm, run_sweep, scale, Table};
use row_common::config::{AtomicPolicy, DetectorKind, PredictorKind, RowConfig};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

const THRESHOLDS: [u64; 6] = [0, 100, 400, 1000, 2000, u64::MAX];

fn threshold_name(t: u64) -> String {
    if t == u64::MAX {
        "t=inf".to_string()
    } else {
        format!("t={t}")
    }
}

fn main() {
    banner("Fig. 10", "RW+Dir latency-threshold sweep (U/D predictor)");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let mut variants = vec![Variant::eager()];
    variants.extend(THRESHOLDS.iter().map(|&t| {
        Variant::custom(
            threshold_name(t),
            AtomicPolicy::Row(RowConfig::new(
                DetectorKind::ReadyWindowDir {
                    latency_threshold: t,
                },
                PredictorKind::UpDown,
            )),
        )
    }));
    let sweep = Sweep::grid("fig10", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let columns: Vec<String> = THRESHOLDS.iter().map(|&t| threshold_name(t)).collect();
    let mut headers = vec!["benchmark"];
    headers.extend(columns.iter().map(String::as_str));
    let mut table = Table::new(&headers);
    for &b in &benches {
        let mut row = vec![b.name().to_string()];
        row.extend(
            columns
                .iter()
                .map(|c| format!("{:.3}", norm(&r, b, c, "eager"))),
        );
        table.row(row);
    }
    let mut gm_row = vec!["geomean".to_string()];
    gm_row.extend(
        columns
            .iter()
            .map(|c| format!("{:.3}", geomean_norm(&r, &benches, c, "eager"))),
    );
    table.row(gm_row);
    table.print();
    println!("\npaper: optimum at 400; 400→2000 nearly flat; 0 penalizes canneal-like apps.");
}
