//! Fig. 5: atomics per 10 kilo-instructions and the percentage of atomics
//! that face contention under eager execution.

use row_bench::{banner, run_sweep, scale, Table};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 5", "atomic intensity and contentiousness (eager)");
    let exp = scale();
    let benches = Benchmark::all().to_vec();
    let sweep = Sweep::grid("fig05", &exp, &benches, &[Variant::eager()], &[]);
    let r = run_sweep(&sweep);
    let mut table = Table::new(&["benchmark", "atomics/10k", "contended %"]);
    for &b in &benches {
        let s = r.stat(&format!("{}/eager", b.name()));
        table.row([
            b.name().to_string(),
            format!("{:.1}", s.atomics_per_10k()),
            format!("{:.0}%", 100.0 * s.contended_fraction()),
        ]);
    }
    table.print();
}
