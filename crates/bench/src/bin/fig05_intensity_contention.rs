//! Fig. 5: atomics per 10 kilo-instructions and the percentage of atomics
//! that face contention under eager execution.

use row_bench::{banner, parallel_map, scale};
use row_sim::run_eager;
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 5", "atomic intensity and contentiousness (eager)");
    let exp = scale();
    let rows = parallel_map(Benchmark::all().to_vec(), |&b| {
        let e = run_eager(b, &exp).expect("eager run");
        (
            b,
            e.total.atomics_per_10k(),
            100.0 * e.total.contended_fraction(),
        )
    });
    println!(
        "{:15} {:>15} {:>14}",
        "benchmark", "atomics/10k", "contended %"
    );
    for (b, apk, cont) in rows {
        println!("{:15} {:>15.1} {:>13.0}%", b.name(), apk, cont);
    }
}
