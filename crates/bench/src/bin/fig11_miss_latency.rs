//! Fig. 11: average L1D miss latency for eager, lazy, and RoW with the
//! RW+Dir U/D and Sat predictors.

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_eager, run_lazy, run_row, RowVariant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 11", "mean L1D miss latency (all memory instructions)");
    let exp = scale();
    let rows = parallel_map(Benchmark::atomic_intensive(), |&b| {
        let e = run_eager(b, &exp).expect("eager");
        let l = run_lazy(b, &exp).expect("lazy");
        let ud = run_row(b, RowVariant::RwDirUd, &exp).expect("row ud");
        let sat = run_row(b, RowVariant::RwDirSat, &exp).expect("row sat");
        (
            b,
            e.miss_latency.mean(),
            l.miss_latency.mean(),
            ud.miss_latency.mean(),
            sat.miss_latency.mean(),
        )
    });
    println!(
        "{:15} {:>9} {:>9} {:>12} {:>12}",
        "benchmark", "eager", "lazy", "RW+Dir_U/D", "RW+Dir_Sat"
    );
    for (b, e, l, ud, sat) in rows {
        println!(
            "{:15} {:>9.0} {:>9.0} {:>12.0} {:>12.0}",
            b.name(),
            e,
            l,
            ud,
            sat
        );
    }
    println!("\npaper: eager nearly doubles lazy's miss latency on pc/sps/tpcc;");
    println!("RoW tracks lazy there and stays flat on non-contended apps.");
}
