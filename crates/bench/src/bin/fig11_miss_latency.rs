//! Fig. 11: average L1D miss latency for eager, lazy, and RoW with the
//! RW+Dir U/D and Sat predictors.

use row_bench::{banner, run_sweep, scale, Table};
use row_sim::{RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 11", "mean L1D miss latency (all memory instructions)");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let variants = [
        Variant::eager(),
        Variant::lazy(),
        Variant::row(RowVariant::RwDirUd),
        Variant::row(RowVariant::RwDirSat),
    ];
    let sweep = Sweep::grid("fig11", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let mut headers = vec!["benchmark"];
    headers.extend(variants.iter().map(|v| v.name.as_str()));
    let mut table = Table::new(&headers);
    for &b in &benches {
        let mut row = vec![b.name().to_string()];
        row.extend(variants.iter().map(|v| {
            format!(
                "{:.0}",
                r.stat(&format!("{}/{}", b.name(), v.name))
                    .miss_latency_mean
            )
        }));
        table.row(row);
    }
    table.print();
    println!("\npaper: eager nearly doubles lazy's miss latency on pc/sps/tpcc;");
    println!("RoW tracks lazy there and stays flat on non-contended apps.");
}
