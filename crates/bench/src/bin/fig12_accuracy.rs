//! Fig. 12: contention-prediction accuracy of the Up/Down and
//! Saturate-on-Contention predictors (RW+Dir detection).

use row_bench::{banner, run_sweep, scale, Table};
use row_sim::{RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 12", "contention-prediction accuracy");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let variants = [
        Variant::row(RowVariant::RwDirUd),
        Variant::row(RowVariant::RwDirSat),
    ];
    let sweep = Sweep::grid("fig12", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let accuracy = |b: Benchmark, v: &Variant| {
        r.stat(&format!("{}/{}", b.name(), v.name))
            .accuracy
            .expect("RoW tracks accuracy")
            .accuracy()
    };
    let mut table = Table::new(&["benchmark", "U/D", "Sat"]);
    let (mut su, mut ss) = (0.0, 0.0);
    for &b in &benches {
        let (ud, sat) = (accuracy(b, &variants[0]), accuracy(b, &variants[1]));
        table.row([
            b.name().to_string(),
            format!("{:.0}%", 100.0 * ud),
            format!("{:.0}%", 100.0 * sat),
        ]);
        su += ud;
        ss += sat;
    }
    let n = benches.len() as f64;
    table.row([
        "mean".to_string(),
        format!("{:.0}%", 100.0 * su / n),
        format!("{:.0}%", 100.0 * ss / n),
    ]);
    table.print();
    println!("\npaper: 86% U/D, 73% Sat on average.");
}
