//! Fig. 12: contention-prediction accuracy of the Up/Down and
//! Saturate-on-Contention predictors (RW+Dir detection).

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_row, RowVariant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 12", "contention-prediction accuracy");
    let exp = scale();
    let rows = parallel_map(Benchmark::atomic_intensive(), |&b| {
        let ud = run_row(b, RowVariant::RwDirUd, &exp).expect("row ud");
        let sat = run_row(b, RowVariant::RwDirSat, &exp).expect("row sat");
        (
            b,
            ud.accuracy.expect("RoW tracks accuracy"),
            sat.accuracy.expect("RoW tracks accuracy"),
        )
    });
    println!("{:15} {:>8} {:>8}", "benchmark", "U/D", "Sat");
    let (mut su, mut ss, mut n) = (0.0, 0.0, 0);
    for (b, ud, sat) in rows {
        println!(
            "{:15} {:>7.0}% {:>7.0}%",
            b.name(),
            100.0 * ud.accuracy(),
            100.0 * sat.accuracy()
        );
        su += ud.accuracy();
        ss += sat.accuracy();
        n += 1;
    }
    println!(
        "{:15} {:>7.0}% {:>7.0}%   (paper: 86% U/D, 73% Sat)",
        "mean",
        100.0 * su / n as f64,
        100.0 * ss / n as f64
    );
}
