//! Fig. 4: independent instructions with respect to eager and lazy atomics —
//! older not-yet-executed instructions at eager issue, and younger
//! already-started instructions at lazy issue.

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_eager, run_lazy};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 4", "independent instructions around atomics");
    let exp = scale();
    let rows = parallel_map(Benchmark::atomic_intensive(), |&b| {
        let e = run_eager(b, &exp).expect("eager run");
        let l = run_lazy(b, &exp).expect("lazy run");
        (
            b,
            e.total.older_unexecuted_at_issue.mean(),
            l.total.younger_started_at_issue.mean(),
        )
    });
    println!(
        "{:15} {:>26} {:>26}",
        "benchmark", "older unexecuted @ eager", "younger started @ lazy"
    );
    let (mut so, mut sy) = (0.0, 0.0);
    for (b, older, younger) in &rows {
        println!("{:15} {:>26.1} {:>26.1}", b.name(), older, younger);
        so += older;
        sy += younger;
    }
    println!(
        "{:15} {:>26.1} {:>26.1}   (paper: ~48 older on average)",
        "mean",
        so / rows.len() as f64,
        sy / rows.len() as f64
    );
}
