//! Fig. 4: independent instructions with respect to eager and lazy atomics —
//! older not-yet-executed instructions at eager issue, and younger
//! already-started instructions at lazy issue.

use row_bench::{banner, run_sweep, scale, Table};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 4", "independent instructions around atomics");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let sweep = Sweep::grid(
        "fig04",
        &exp,
        &benches,
        &[Variant::eager(), Variant::lazy()],
        &[],
    );
    let r = run_sweep(&sweep);
    let mut table = Table::new(&[
        "benchmark",
        "older unexecuted @ eager",
        "younger started @ lazy",
    ]);
    let (mut so, mut sy) = (0.0, 0.0);
    for &b in &benches {
        let older = r.stat(&format!("{}/eager", b.name())).older_unexecuted_mean;
        let younger = r.stat(&format!("{}/lazy", b.name())).younger_started_mean;
        table.row([
            b.name().to_string(),
            format!("{older:.1}"),
            format!("{younger:.1}"),
        ]);
        so += older;
        sy += younger;
    }
    table.row([
        "mean".to_string(),
        format!("{:.1}", so / benches.len() as f64),
        format!("{:.1}", sy / benches.len() as f64),
    ]);
    table.print();
    println!("\npaper: ~48 older unexecuted instructions on average at eager issue.");
}
