//! Fig. 6: atomic latency breakdown (dispatch→issue, issue→lock,
//! lock→unlock) for eager (first row) and lazy (second row) execution.

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_eager, run_lazy};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 6", "atomic latency breakdown, eager vs lazy");
    let exp = scale();
    let rows = parallel_map(Benchmark::atomic_intensive(), |&b| {
        let e = run_eager(b, &exp).expect("eager run");
        let l = run_lazy(b, &exp).expect("lazy run");
        (b, e.total.breakdown, l.total.breakdown)
    });
    println!(
        "{:15} {:6} {:>12} {:>12} {:>14} {:>8}",
        "benchmark", "mode", "disp→issue", "issue→lock", "lock→unlock", "total"
    );
    for (b, e, l) in rows {
        for (mode, bd) in [("eager", e), ("lazy", l)] {
            println!(
                "{:15} {:6} {:>12.1} {:>12.1} {:>14.1} {:>8.1}",
                b.name(),
                mode,
                bd.dispatch_to_issue.mean(),
                bd.issue_to_lock.mean(),
                bd.lock_to_unlock.mean(),
                bd.total_mean()
            );
        }
    }
    println!("\npaper shape: lazy grows disp→issue (blue) but shrinks issue→lock");
    println!("(orange) and lock→unlock (yellow) on contended apps.");
}
