//! Fig. 6: atomic latency breakdown (dispatch→issue, issue→lock,
//! lock→unlock) for eager (first row) and lazy (second row) execution.

use row_bench::{banner, run_sweep, scale, Table};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 6", "atomic latency breakdown, eager vs lazy");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let sweep = Sweep::grid(
        "fig06",
        &exp,
        &benches,
        &[Variant::eager(), Variant::lazy()],
        &[],
    );
    let r = run_sweep(&sweep);
    let mut table = Table::new(&[
        "benchmark",
        "mode",
        "disp→issue",
        "issue→lock",
        "lock→unlock",
        "total",
    ]);
    for &b in &benches {
        for mode in ["eager", "lazy"] {
            let s = r.stat(&format!("{}/{mode}", b.name()));
            table.row([
                b.name().to_string(),
                mode.to_string(),
                format!("{:.1}", s.breakdown_dispatch_to_issue),
                format!("{:.1}", s.breakdown_issue_to_lock),
                format!("{:.1}", s.breakdown_lock_to_unlock),
                format!("{:.1}", s.breakdown_total()),
            ]);
        }
    }
    table.print();
    println!("\npaper shape: lazy grows disp→issue (blue) but shrinks issue→lock");
    println!("(orange) and lock→unlock (yellow) on contended apps.");
}
