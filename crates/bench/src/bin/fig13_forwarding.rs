//! Fig. 13: execution time with store→atomic forwarding — eager+Fwd and the
//! RW+Dir RoW variants with and without the locality override, normalized to
//! eager without forwarding.

use row_bench::{banner, geomean_norm, norm, run_sweep, scale, Table};
use row_sim::{RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 13", "forwarding to atomics (locality override)");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let variants = [
        Variant::eager(),
        Variant::lazy(),
        Variant::eager_fwd(),
        Variant::row(RowVariant::RwDirUd),
        Variant::row_fwd(RowVariant::RwDirUd),
        Variant::row_fwd(RowVariant::RwDirSat),
    ];
    let sweep = Sweep::grid("fig13", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let columns: Vec<&str> = variants[1..].iter().map(|v| v.name.as_str()).collect();
    let mut headers = vec!["benchmark"];
    headers.extend(&columns);
    headers.push("overrides");
    let mut table = Table::new(&headers);
    let udf = variants[4].name.as_str();
    for &b in &benches {
        let mut row = vec![b.name().to_string()];
        row.extend(
            columns
                .iter()
                .map(|&c| format!("{:.3}", norm(&r, b, c, "eager"))),
        );
        row.push(
            r.stat(&format!("{}/{udf}", b.name()))
                .locality_overrides
                .to_string(),
        );
        table.row(row);
    }
    let mut gm_row = vec!["geomean".to_string()];
    gm_row.extend(
        columns
            .iter()
            .map(|&c| format!("{:.3}", geomean_norm(&r, &benches, c, "eager"))),
    );
    gm_row.push(String::new());
    table.row(gm_row);
    table.print();
    println!("\npaper: RoW(RW+Dir_U/D)+Fwd best overall; cq recovers via the override.");
}
