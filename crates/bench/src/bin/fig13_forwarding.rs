//! Fig. 13: execution time with store→atomic forwarding — eager+Fwd and the
//! RW+Dir RoW variants with and without the locality override, normalized to
//! eager without forwarding.

use row_bench::{banner, parallel_map, scale};
use row_common::config::AtomicPolicy;
use row_sim::{run_benchmark, run_eager, run_lazy, run_row, run_row_fwd, RowVariant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 13", "forwarding to atomics (locality override)");
    let exp = scale();
    let rows = parallel_map(Benchmark::atomic_intensive(), |&b| {
        let e = run_eager(b, &exp).expect("eager").cycles as f64;
        let l = run_lazy(b, &exp).expect("lazy").cycles as f64 / e;
        let ef = run_benchmark(b, AtomicPolicy::Eager, true, &exp)
            .expect("eager fwd")
            .cycles as f64
            / e;
        let ud = run_row(b, RowVariant::RwDirUd, &exp).expect("ud").cycles as f64 / e;
        let udf = run_row_fwd(b, RowVariant::RwDirUd, &exp).expect("ud fwd");
        let satf = run_row_fwd(b, RowVariant::RwDirSat, &exp)
            .expect("sat fwd")
            .cycles as f64
            / e;
        (
            b,
            l,
            ef,
            ud,
            udf.cycles as f64 / e,
            satf,
            udf.total.locality_overrides,
        )
    });
    println!(
        "{:15} {:>7} {:>10} {:>9} {:>12} {:>13} {:>10}",
        "benchmark", "lazy", "eager+Fwd", "UD_noFwd", "UD+Fwd", "Sat+Fwd", "overrides"
    );
    let mut sums = [0.0f64; 5];
    let mut n = 0;
    for (b, l, ef, ud, udf, satf, ov) in &rows {
        println!(
            "{:15} {:>7.3} {:>10.3} {:>9.3} {:>12.3} {:>13.3} {:>10}",
            b.name(),
            l,
            ef,
            ud,
            udf,
            satf,
            ov
        );
        for (s, v) in sums.iter_mut().zip([l, ef, ud, udf, satf]) {
            *s += v.ln();
        }
        n += 1;
    }
    print!("{:15}", "geomean");
    for s in sums {
        print!(" {:>9.3}", (s / n as f64).exp());
    }
    println!("\n\npaper: RoW(RW+Dir_U/D)+Fwd best overall; cq recovers via the override.");
}
