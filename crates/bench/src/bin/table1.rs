//! Table I: the simulated system parameters.

use row_common::SystemConfig;

fn main() {
    let cfg = SystemConfig::alder_lake_32c();
    println!("== Table I: system parameters ==\n");
    println!("Processor");
    println!("  Cores                        {}", cfg.cores);
    println!(
        "  Fetch / Issue / Commit width {} / {} / {} instructions",
        cfg.core.fetch_width, cfg.core.issue_width, cfg.core.commit_width
    );
    println!(
        "  ROB / LQ / SB                {} / {} / {} entries",
        cfg.core.rob_entries, cfg.core.lq_entries, cfg.core.sb_entries
    );
    println!(
        "  Atomic queue                 {} entries",
        cfg.core.aq_entries
    );
    println!("  Branch predictor             TAGE-lite (TAGE-SC-L substitute)");
    println!("  Mem. dep. predictor          StoreSet");
    println!("Memory");
    let c = |x: row_common::config::CacheConfig| {
        format!(
            "{}KB, {} ways, {} hit cycles",
            x.size_bytes / 1024,
            x.ways,
            x.hit_latency
        )
    };
    println!(
        "  Private L1D cache            {}, IP-stride prefetcher",
        c(cfg.mem.l1d)
    );
    println!("  Private L2 cache             {}", c(cfg.mem.l2));
    println!(
        "  Shared L3 cache              {} per bank",
        c(cfg.mem.l3_bank)
    );
    println!(
        "  Memory access time           {} cycles",
        cfg.mem.mem_latency
    );
    println!("NoC");
    println!(
        "  Mesh                         {}x{}, {}-cycle links, {}-cycle routers",
        cfg.noc.mesh_cols,
        cfg.cores.div_ceil(cfg.noc.mesh_cols),
        cfg.noc.link_latency,
        cfg.noc.router_latency
    );
    cfg.validate()
        .expect("Table I configuration is self-consistent");

    // Table I runs no simulations, but still emits the shared results file
    // (zero jobs) so `BENCH_*.json` collection covers every binary.
    let sweep = row_sim::Sweep::new("table1", &row_bench::scale());
    let results = sweep
        .run(&row_sim::SweepOptions {
            workers: row_bench::sweep_cli().workers,
            results_path: Some(std::path::PathBuf::from("BENCH_table1.json")),
            ..row_sim::SweepOptions::default()
        })
        .expect("empty sweep cannot fail");
    assert!(results.jobs.is_empty());
    eprintln!("wrote BENCH_table1.json");
}
