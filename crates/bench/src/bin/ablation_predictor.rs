//! Ablation: contention-predictor table size (Section IV-D).
//!
//! The paper notes that shrinking the 64-entry table aliases contended and
//! non-contended atomics into shared counters, degrading the contended apps
//! (a single-entry predictor is 0.3% *worse* than always-eager on average).

use row_bench::{banner, norm, run_sweep, scale, Table};
use row_common::config::{AtomicPolicy, DetectorKind, PredictorKind, RowConfig};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

const ENTRIES: [usize; 5] = [1, 4, 16, 64, 256];

fn entries_variant(n: usize) -> Variant {
    let mut cfg = RowConfig::new(DetectorKind::rw_dir_default(), PredictorKind::UpDown);
    cfg.predictor_entries = n;
    Variant::custom(format!("e{n}"), AtomicPolicy::Row(cfg))
}

fn predictor_variant(name: &str, pred: PredictorKind) -> Variant {
    Variant::custom(
        name,
        AtomicPolicy::Row(RowConfig::new(DetectorKind::rw_dir_default(), pred)),
    )
}

fn main() {
    banner("Ablation", "predictor table entries (RW+Dir, U/D)");
    let exp = scale();
    let benches = [
        Benchmark::Canneal,
        Benchmark::Cq,
        Benchmark::Tpcc,
        Benchmark::Sps,
        Benchmark::Pc,
    ];
    let mut variants = vec![Variant::eager()];
    variants.extend(ENTRIES.iter().map(|&n| entries_variant(n)));
    let sweep = Sweep::grid("ablation_predictor_entries", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(ENTRIES.iter().map(|n| n.to_string()));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &b in &benches {
        let mut row = vec![b.name().to_string()];
        row.extend(
            ENTRIES
                .iter()
                .map(|&n| format!("{:.3}", norm(&r, b, &format!("e{n}"), "eager"))),
        );
        table.row(row);
    }
    table.print();
    println!("(normalized to eager)");
    println!("\npaper: fewer entries → aliasing; contended apps lose their lazy win.");

    // Section VII: history does not help contention prediction because
    // atomics are uncorrelated. Compare U/D vs gshare-style History.
    println!("\nhistory ablation (64 entries, normalized to eager):");
    let hist_benches = [
        Benchmark::Canneal,
        Benchmark::Tpcc,
        Benchmark::Sps,
        Benchmark::Pc,
    ];
    let hist_variants = [
        Variant::eager(),
        predictor_variant("U/D", PredictorKind::UpDown),
        predictor_variant("History", PredictorKind::History),
    ];
    let hist_sweep = Sweep::grid(
        "ablation_predictor_history",
        &exp,
        &hist_benches,
        &hist_variants,
        &[],
    );
    let hr = run_sweep(&hist_sweep);
    let mut hist_table = Table::new(&["benchmark", "U/D", "History"]);
    for &b in &hist_benches {
        hist_table.row([
            b.name().to_string(),
            format!("{:.3}", norm(&hr, b, "U/D", "eager")),
            format!("{:.3}", norm(&hr, b, "History", "eager")),
        ]);
    }
    hist_table.print();
}
