//! Ablation: contention-predictor table size (Section IV-D).
//!
//! The paper notes that shrinking the 64-entry table aliases contended and
//! non-contended atomics into shared counters, degrading the contended apps
//! (a single-entry predictor is 0.3% *worse* than always-eager on average).

use row_bench::{banner, parallel_map, scale};
use row_common::config::{AtomicPolicy, DetectorKind, PredictorKind, RowConfig};
use row_sim::{run_benchmark, run_eager};
use row_workloads::Benchmark;

const ENTRIES: [usize; 5] = [1, 4, 16, 64, 256];

fn history_row(exp: &row_sim::ExperimentConfig) {
    // Section VII: history does not help contention prediction because
    // atomics are uncorrelated. Compare U/D vs gshare-style History.
    println!("\nhistory ablation (64 entries, normalized to eager):");
    println!("{:15} {:>8} {:>8}", "benchmark", "U/D", "History");
    let rows = parallel_map(
        vec![
            Benchmark::Canneal,
            Benchmark::Tpcc,
            Benchmark::Sps,
            Benchmark::Pc,
        ],
        |&b| {
            let e = run_eager(b, exp).expect("eager").cycles as f64;
            let mk = |pred| {
                let cfg = RowConfig::new(DetectorKind::rw_dir_default(), pred);
                run_benchmark(b, AtomicPolicy::Row(cfg), false, exp)
                    .expect("row")
                    .cycles as f64
                    / e
            };
            (b, mk(PredictorKind::UpDown), mk(PredictorKind::History))
        },
    );
    for (b, ud, hist) in rows {
        println!("{:15} {:>8.3} {:>8.3}", b.name(), ud, hist);
    }
}

fn main() {
    banner("Ablation", "predictor table entries (RW+Dir, U/D)");
    let exp = scale();
    let benches = [
        Benchmark::Canneal,
        Benchmark::Cq,
        Benchmark::Tpcc,
        Benchmark::Sps,
        Benchmark::Pc,
    ];
    let rows = parallel_map(benches.to_vec(), |&b| {
        let e = run_eager(b, &exp).expect("eager").cycles as f64;
        let vs: Vec<f64> = ENTRIES
            .iter()
            .map(|&n| {
                let mut cfg = RowConfig::new(DetectorKind::rw_dir_default(), PredictorKind::UpDown);
                cfg.predictor_entries = n;
                run_benchmark(b, AtomicPolicy::Row(cfg), false, &exp)
                    .expect("row")
                    .cycles as f64
                    / e
            })
            .collect();
        (b, vs)
    });
    print!("{:15}", "benchmark");
    for n in ENTRIES {
        print!(" {:>8}", n);
    }
    println!("   (normalized to eager)");
    for (b, vs) in rows {
        print!("{:15}", b.name());
        for v in vs {
            print!(" {:>8.3}", v);
        }
        println!();
    }
    println!("\npaper: fewer entries → aliasing; contended apps lose their lazy win.");
    history_row(&exp);
}
