//! Ablation: Atomic Queue depth.
//!
//! The AQ bounds how many atomics are in flight; a shallow AQ stalls
//! dispatch on atomic-intensive workloads and caps the MLP that eager
//! execution exploits.

use row_bench::{banner, parallel_map, scale};
use row_common::config::AtomicPolicy;
use row_cpu::instr::InstrStream;
use row_sim::Machine;
use row_workloads::{Benchmark, ProfileStream};

const DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    banner("Ablation", "Atomic Queue entries (eager execution)");
    let exp = scale();
    let benches = [Benchmark::Canneal, Benchmark::Sps, Benchmark::Pc];
    let rows = parallel_map(benches.to_vec(), |&b| {
        let profile = b.profile().with_instructions(exp.instructions);
        let run = |aq: usize| {
            let mut sys = exp.system().with_policy(AtomicPolicy::Eager);
            sys.core.aq_entries = aq;
            let streams: Vec<Box<dyn InstrStream>> = (0..exp.cores)
                .map(|t| {
                    Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed))
                        as Box<dyn InstrStream>
                })
                .collect();
            Machine::new(&sys, streams)
                .run(exp.cycle_limit)
                .expect("finishes")
                .cycles as f64
        };
        let base = run(16);
        let vs: Vec<f64> = DEPTHS.iter().map(|&d| run(d) / base).collect();
        (b, vs)
    });
    print!("{:15}", "benchmark");
    for d in DEPTHS {
        print!(" {:>8}", d);
    }
    println!("   (normalized to AQ=16)");
    for (b, vs) in rows {
        print!("{:15}", b.name());
        for v in vs {
            print!(" {:>8.3}", v);
        }
        println!();
    }
}
