//! Ablation: Atomic Queue depth.
//!
//! The AQ bounds how many atomics are in flight; a shallow AQ stalls
//! dispatch on atomic-intensive workloads and caps the MLP that eager
//! execution exploits.

use row_bench::{banner, norm, run_sweep, scale, Table};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

const DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    banner("Ablation", "Atomic Queue entries (eager execution)");
    let exp = scale();
    let benches = [Benchmark::Canneal, Benchmark::Sps, Benchmark::Pc];
    let variants: Vec<Variant> = DEPTHS
        .iter()
        .map(|&d| Variant {
            name: format!("aq{d}"),
            ..Variant::eager().with_aq_entries(d)
        })
        .collect();
    let sweep = Sweep::grid("ablation_aq", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(DEPTHS.iter().map(|d| d.to_string()));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &b in &benches {
        let mut row = vec![b.name().to_string()];
        row.extend(
            DEPTHS
                .iter()
                .map(|&d| format!("{:.3}", norm(&r, b, &format!("aq{d}"), "aq16"))),
        );
        table.row(row);
    }
    table.print();
    println!("\n(normalized to AQ=16)");
}
