//! Scale-out sweep: every atomic policy at 64/128/256 cores.
//!
//! The paper evaluates 32 cores; this sweep extends the comparison to the
//! `huge` tier (Table I per-core hierarchy on an 8×8 / 16×8 / 16×16 mesh)
//! to show the RoW ordering survives — and how the eager/lazy gap moves —
//! as contention scales. Writes `BENCH_fig_scale.json` (norush-figure-v1);
//! the committed copy under `results/` is the perf-trajectory baseline.
//!
//! The per-thread instruction count follows `NORUSH_SCALE` (quick default
//! keeps cells CI-sized; `huge` runs the full 20 k-instruction cells the
//! committed baseline uses).

use row_bench::{banner, run_sweep, scale, Table};
use row_sim::{JobSpec, RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

/// The swept core counts — the `huge` tier's three mesh geometries.
const CORES: [usize; 3] = [64, 128, 256];

fn main() {
    banner("fig_scale", "policy comparison at 64/128/256 cores");
    let base = scale();
    let variants = [
        Variant::eager(),
        Variant::lazy(),
        Variant::eager_fwd(),
        Variant::far(),
        Variant::row(RowVariant::RwDirUd),
        Variant::row_fwd(RowVariant::RwDirUd),
    ];
    let bench = Benchmark::Pc;
    let mut sweep = Sweep::new("fig_scale", &base);
    for &cores in &CORES {
        for variant in &variants {
            let mut exp = base;
            exp.cores = cores;
            exp.paper_caches = true;
            // Room for the 256-core worst case; cells are retried at 4x on
            // a first timeout anyway.
            exp.cycle_limit = exp.cycle_limit.max(400_000_000);
            sweep.push(
                format!("{}/{}@c{}", bench.name(), variant.name, cores),
                JobSpec::Bench {
                    bench,
                    variant: variant.clone(),
                    exp,
                },
            );
        }
    }
    let r = run_sweep(&sweep);

    let mut table = Table::new(&[
        "cores",
        "eager",
        "lazy",
        "eager+fwd",
        "far",
        "RoW",
        "RoW+fwd",
    ]);
    for &cores in &CORES {
        let cell = |v: &Variant| {
            let cycles = r.cycles(&format!("{}/{}@c{}", bench.name(), v.name, cores));
            let base = r.cycles(&format!("{}/eager@c{}", bench.name(), cores));
            format!("{:.3}", cycles / base)
        };
        let mut row = vec![format!("{cores}")];
        row.extend(variants.iter().map(cell));
        table.row(row);
    }
    println!("cycles normalized to eager at the same core count:");
    table.print();
}
