//! Fig. 9: normalized execution time for eager, lazy, and the six RoW
//! variants (EW/RW/RW+Dir × Up-Down/Sat), forwarding disabled.

use row_bench::{banner, geomean_norm, norm, run_sweep, scale, Table};
use row_sim::{RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 9", "RoW variants vs eager and lazy (no forwarding)");
    let exp = scale();
    let benches = Benchmark::atomic_intensive();
    let mut variants = vec![Variant::eager(), Variant::lazy()];
    variants.extend(RowVariant::ALL.iter().map(|&v| Variant::row(v)));
    let sweep = Sweep::grid("fig09", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let columns: Vec<&str> = variants[1..].iter().map(|v| v.name.as_str()).collect();
    let mut headers = vec!["benchmark"];
    headers.extend(&columns);
    let mut table = Table::new(&headers);
    for &b in &benches {
        let mut row = vec![b.name().to_string()];
        row.extend(
            columns
                .iter()
                .map(|&c| format!("{:.3}", norm(&r, b, c, "eager"))),
        );
        table.row(row);
    }
    let mut gm_row = vec!["geomean".to_string()];
    gm_row.extend(
        columns
            .iter()
            .map(|&c| format!("{:.3}", geomean_norm(&r, &benches, c, "eager"))),
    );
    table.row(gm_row);
    table.print();
    println!("\npaper: RW+Dir_Sat best on average; EW fails on contended apps.");
}
