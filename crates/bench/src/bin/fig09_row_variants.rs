//! Fig. 9: normalized execution time for eager, lazy, and the six RoW
//! variants (EW/RW/RW+Dir × Up-Down/Sat), forwarding disabled.

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_eager, run_lazy, run_row, RowVariant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 9", "RoW variants vs eager and lazy (no forwarding)");
    let exp = scale();
    let rows = parallel_map(Benchmark::atomic_intensive(), |&b| {
        let e = run_eager(b, &exp).expect("eager").cycles as f64;
        let l = run_lazy(b, &exp).expect("lazy").cycles as f64;
        let vs: Vec<f64> = RowVariant::ALL
            .iter()
            .map(|&v| run_row(b, v, &exp).expect("row").cycles as f64 / e)
            .collect();
        (b, l / e, vs)
    });
    print!("{:15} {:>7}", "benchmark", "lazy");
    for v in RowVariant::ALL {
        print!(" {:>10}", v.name());
    }
    println!();
    let mut sums = vec![0.0; 7];
    for (b, lazy, vs) in &rows {
        print!("{:15} {:>7.3}", b.name(), lazy);
        sums[0] += lazy.ln();
        for (i, v) in vs.iter().enumerate() {
            print!(" {:>10.3}", v);
            sums[i + 1] += v.ln();
        }
        println!();
    }
    print!("{:15}", "geomean");
    for s in sums {
        print!(" {:>9.3} ", (s / rows.len() as f64).exp());
    }
    println!("\n\npaper: RW+Dir_Sat best on average; EW fails on contended apps.");
}
