//! Fig. 1: normalized execution time of lazy vs eager atomics, sorted from
//! best to worst eager-vs-lazy speedup.

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_eager, run_lazy};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 1", "lazy execution time normalized to eager");
    let exp = scale();
    let rows = parallel_map(Benchmark::all().to_vec(), |&b| {
        let e = run_eager(b, &exp).expect("eager run");
        let l = run_lazy(b, &exp).expect("lazy run");
        (b, l.cycles as f64 / e.cycles as f64)
    });
    println!("{:15} {:>12}", "benchmark", "lazy/eager");
    for (b, r) in &rows {
        let tag = if *r > 1.02 {
            "eager wins"
        } else if *r < 0.98 {
            "lazy wins"
        } else {
            "tie"
        };
        println!("{:15} {:>12.3}  {}", b.name(), r, tag);
    }
    let gm = row_common::stats::geomean(&rows.iter().map(|(_, r)| *r).collect::<Vec<_>>());
    println!("\ngeomean lazy/eager: {gm:.3} (paper: green left, red right, blue flat)");
}
