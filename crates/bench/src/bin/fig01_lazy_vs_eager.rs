//! Fig. 1: normalized execution time of lazy vs eager atomics.

use row_bench::{banner, norm, run_sweep, scale, Table};
use row_sim::{Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Fig. 1", "lazy execution time normalized to eager");
    let exp = scale();
    let benches = Benchmark::all().to_vec();
    let sweep = Sweep::grid(
        "fig01",
        &exp,
        &benches,
        &[Variant::eager(), Variant::lazy()],
        &[],
    );
    let r = run_sweep(&sweep);
    let mut table = Table::new(&["benchmark", "lazy/eager", "verdict"]);
    let mut ratios = Vec::new();
    for &b in &benches {
        let ratio = norm(&r, b, "lazy", "eager");
        let tag = if ratio > 1.02 {
            "eager wins"
        } else if ratio < 0.98 {
            "lazy wins"
        } else {
            "tie"
        };
        table.row([b.name().to_string(), format!("{ratio:.3}"), tag.to_string()]);
        ratios.push(ratio);
    }
    table.print();
    let gm = row_common::stats::geomean(&ratios);
    println!("\ngeomean lazy/eager: {gm:.3} (paper: green left, red right, blue flat)");
}
