//! The paper's headline: RoW (RW+Dir_U/D + forwarding) vs the eager
//! baseline, average and maximum reduction, plus the hardware budget.

use row_bench::{banner, parallel_map, scale};
use row_common::config::RowConfig;
use row_core::RowEngine;
use row_sim::{run_eager, run_row_fwd, RowVariant};
use row_workloads::Benchmark;

fn main() {
    banner("Headline", "RoW vs always-eager (Section VI summary)");
    let exp = scale();
    let rows = parallel_map(Benchmark::all().to_vec(), |&b| {
        let e = run_eager(b, &exp).expect("eager").cycles as f64;
        let r = run_row_fwd(b, RowVariant::RwDirUd, &exp).expect("row").cycles as f64;
        (b, r / e)
    });
    let mut best = (Benchmark::Pc, 1.0f64);
    let mut logs = Vec::new();
    for (b, ratio) in &rows {
        println!("{:15} RoW/eager = {ratio:.3}", b.name());
        logs.push(*ratio);
        if *ratio < best.1 {
            best = (*b, *ratio);
        }
    }
    let gm = row_common::stats::geomean(&logs);
    println!("\nall-apps geomean reduction: {:.1}%", 100.0 * (1.0 - gm));
    println!(
        "largest reduction: {:.1}% on {}",
        100.0 * (1.0 - best.1),
        best.0.name()
    );
    let engine = RowEngine::new(RowConfig::best());
    println!(
        "hardware budget: {} bytes of storage (+14-bit subtractor/comparator)",
        engine.storage_bits(16) / 8
    );
    println!("paper: 9.2% avg (up to 43%) on atomic-intensive apps; 4.0% across all.");
}
