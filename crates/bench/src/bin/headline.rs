//! The paper's headline: RoW (RW+Dir_U/D + forwarding) vs the eager
//! baseline, average and maximum reduction, plus the hardware budget.
//!
//! Besides the console table, the sweep engine writes `BENCH_headline.json`
//! (the shared per-figure schema documented in `results/README.md`) so CI
//! and scripts can diff runs without scraping stdout.

use row_bench::{banner, norm, run_sweep, scale, Table};
use row_common::config::RowConfig;
use row_core::RowEngine;
use row_sim::{RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Headline", "RoW vs always-eager (Section VI summary)");
    let exp = scale();
    let benches = Benchmark::all().to_vec();
    let row_variant = Variant::row_fwd(RowVariant::RwDirUd);
    let sweep = Sweep::grid(
        "headline",
        &exp,
        &benches,
        &[Variant::eager(), row_variant.clone()],
        &[],
    );
    let r = run_sweep(&sweep);
    let row = row_variant.name.as_str();
    let mut table = Table::new(&["benchmark", "RoW/eager"]);
    let mut best = (Benchmark::Pc, 1.0f64);
    let mut ratios = Vec::new();
    for &b in &benches {
        let ratio = norm(&r, b, row, "eager");
        table.row([b.name().to_string(), format!("{ratio:.3}")]);
        ratios.push(ratio);
        if ratio < best.1 {
            best = (b, ratio);
        }
    }
    table.print();
    let gm = row_common::stats::geomean(&ratios);
    println!("\nall-apps geomean reduction: {:.1}%", 100.0 * (1.0 - gm));
    println!(
        "largest reduction: {:.1}% on {}",
        100.0 * (1.0 - best.1),
        best.0.name()
    );
    let engine = RowEngine::new(RowConfig::best());
    println!(
        "hardware budget: {} bytes of storage (+14-bit subtractor/comparator)",
        engine.storage_bits(16) / 8
    );
    println!("paper: 9.2% avg (up to 43%) on atomic-intensive apps; 4.0% across all.");
}
