//! The paper's headline: RoW (RW+Dir_U/D + forwarding) vs the eager
//! baseline, average and maximum reduction, plus the hardware budget.
//!
//! Besides the console table, writes `BENCH_headline.json` (schema documented
//! in `results/README.md`) so CI and scripts can diff runs without scraping
//! stdout.

use std::time::Instant;

use row_bench::{banner, parallel_map, scale};
use row_common::config::RowConfig;
use row_core::RowEngine;
use row_sim::{run_eager, run_row_fwd, RowVariant, RunResult};
use row_workloads::Benchmark;

struct Row {
    bench: Benchmark,
    eager: RunResult,
    row: RunResult,
    wall_eager_s: f64,
    wall_row_s: f64,
}

fn atomics_per_kilo_instr(r: &RunResult) -> f64 {
    if r.total.committed == 0 {
        0.0
    } else {
        1000.0 * r.total.atomics as f64 / r.total.committed as f64
    }
}

/// Transport retransmissions across both runs of a row (0 unless the suite
/// is ever pointed at a lossy-chaos configuration).
fn transport_retries(r: &RunResult) -> u64 {
    r.transport.map_or(0, |t| t.retries + t.nack_retransmits)
}

fn json_row(r: &Row) -> String {
    format!(
        concat!(
            "    {{\"benchmark\": \"{}\", \"cycles_eager\": {}, \"cycles_row\": {}, ",
            "\"ratio\": {:.6}, \"ipc_eager\": {:.4}, \"ipc_row\": {:.4}, ",
            "\"atomics_per_kilo_instr\": {:.3}, ",
            "\"transport_retries_eager\": {}, \"transport_retries_row\": {}, ",
            "\"transport_giveups\": {}, ",
            "\"wall_time_s_eager\": {:.3}, \"wall_time_s_row\": {:.3}}}"
        ),
        r.bench.name(),
        r.eager.cycles,
        r.row.cycles,
        r.row.cycles as f64 / r.eager.cycles as f64,
        r.eager.ipc(),
        r.row.ipc(),
        atomics_per_kilo_instr(&r.eager),
        transport_retries(&r.eager),
        transport_retries(&r.row),
        r.eager.transport.map_or(0, |t| t.giveups) + r.row.transport.map_or(0, |t| t.giveups),
        r.wall_eager_s,
        r.wall_row_s,
    )
}

fn main() {
    banner("Headline", "RoW vs always-eager (Section VI summary)");
    let exp = scale();
    let rows = parallel_map(Benchmark::all().to_vec(), |&b| {
        let t0 = Instant::now();
        let eager = run_eager(b, &exp).expect("eager");
        let wall_eager_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let row = run_row_fwd(b, RowVariant::RwDirUd, &exp).expect("row");
        let wall_row_s = t1.elapsed().as_secs_f64();
        Row {
            bench: b,
            eager,
            row,
            wall_eager_s,
            wall_row_s,
        }
    });
    let mut best = (Benchmark::Pc, 1.0f64);
    let mut ratios = Vec::new();
    for r in &rows {
        let ratio = r.row.cycles as f64 / r.eager.cycles as f64;
        println!("{:15} RoW/eager = {ratio:.3}", r.bench.name());
        ratios.push(ratio);
        if ratio < best.1 {
            best = (r.bench, ratio);
        }
    }
    let gm = row_common::stats::geomean(&ratios);
    println!("\nall-apps geomean reduction: {:.1}%", 100.0 * (1.0 - gm));
    println!(
        "largest reduction: {:.1}% on {}",
        100.0 * (1.0 - best.1),
        best.0.name()
    );
    let engine = RowEngine::new(RowConfig::best());
    println!(
        "hardware budget: {} bytes of storage (+14-bit subtractor/comparator)",
        engine.storage_bits(16) / 8
    );
    println!("paper: 9.2% avg (up to 43%) on atomic-intensive apps; 4.0% across all.");

    let body: Vec<String> = rows.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"schema\": \"norush-headline-v2\",\n  \"cores\": {},\n  \"instructions_per_core\": {},\n  \"geomean_ratio\": {:.6},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        exp.cores,
        exp.instructions,
        gm,
        body.join(",\n"),
    );
    match std::fs::write("BENCH_headline.json", &json) {
        Ok(()) => println!("wrote BENCH_headline.json"),
        Err(e) => eprintln!("could not write BENCH_headline.json: {e}"),
    }
}
