//! Ablation: near (cache-locked) vs far (at-home) atomics — the Section VII
//! design alternative — against eager, lazy, and RoW.
//!
//! Far atomics never lock a cacheline, so they sidestep contention entirely,
//! but they pay a NoC round trip per operation and destroy atomic locality.

use row_bench::{banner, parallel_map, scale};
use row_sim::{run_eager, run_far, run_lazy, run_row_fwd, RowVariant};
use row_workloads::Benchmark;

fn main() {
    banner("Ablation", "near vs far atomic placement");
    let exp = scale();
    let benches = [
        Benchmark::Canneal,
        Benchmark::Cq,
        Benchmark::Tpcc,
        Benchmark::Sps,
        Benchmark::Pc,
    ];
    let rows = parallel_map(benches.to_vec(), |&b| {
        let e = run_eager(b, &exp).expect("eager").cycles as f64;
        let l = run_lazy(b, &exp).expect("lazy").cycles as f64 / e;
        let row = run_row_fwd(b, RowVariant::RwDirUd, &exp)
            .expect("row")
            .cycles as f64
            / e;
        let far = run_far(b, &exp).expect("far").cycles as f64 / e;
        (b, l, row, far)
    });
    println!(
        "{:15} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "eager", "lazy", "RoW+Fwd", "far"
    );
    for (b, l, row, far) in rows {
        println!(
            "{:15} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            b.name(),
            1.0,
            l,
            row,
            far
        );
    }
    println!("\nfar avoids lock-holding on hot lines but pays a round trip per");
    println!("atomic and loses locality — the paper's reason to stay near + RoW.");
}
