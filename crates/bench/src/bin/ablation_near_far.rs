//! Ablation: near (cache-locked) vs far (at-home) atomics — the Section VII
//! design alternative — against eager, lazy, and RoW.
//!
//! Far atomics never lock a cacheline, so they sidestep contention entirely,
//! but they pay a NoC round trip per operation and destroy atomic locality.

use row_bench::{banner, norm, run_sweep, scale, Table};
use row_sim::{RowVariant, Sweep, Variant};
use row_workloads::Benchmark;

fn main() {
    banner("Ablation", "near vs far atomic placement");
    let exp = scale();
    let benches = [
        Benchmark::Canneal,
        Benchmark::Cq,
        Benchmark::Tpcc,
        Benchmark::Sps,
        Benchmark::Pc,
    ];
    let row_fwd = Variant::row_fwd(RowVariant::RwDirUd);
    let row_name = row_fwd.name.clone();
    let variants = [Variant::eager(), Variant::lazy(), row_fwd, Variant::far()];
    let sweep = Sweep::grid("ablation_near_far", &exp, &benches, &variants, &[]);
    let r = run_sweep(&sweep);
    let mut table = Table::new(&["benchmark", "eager", "lazy", "RoW+Fwd", "far"]);
    for &b in &benches {
        table.row([
            b.name().to_string(),
            "1.000".to_string(),
            format!("{:.3}", norm(&r, b, "lazy", "eager")),
            format!("{:.3}", norm(&r, b, &row_name, "eager")),
            format!("{:.3}", norm(&r, b, "far", "eager")),
        ]);
    }
    table.print();
    println!("\nfar avoids lock-holding on hot lines but pays a round trip per");
    println!("atomic and loses locality — the paper's reason to stay near + RoW.");
}
