//! Fig. 2: cycles per iteration of the RMW microbenchmark, on fenced
//! (Kentsfield-like) and unfenced (Coffee-Lake-like) core models.

use row_bench::{banner, run_sweep, scale, Table};
use row_common::config::FenceModel;
use row_sim::{JobSpec, Sweep};
use row_workloads::{MicroRmw, MicroVariant};

const MODELS: [(&str, FenceModel); 2] = [
    ("Intel i5-9400F-like (unfenced)", FenceModel::Unfenced),
    ("Intel Xeon X3210-like (fenced)", FenceModel::Fenced),
];

fn fence_tag(model: FenceModel) -> &'static str {
    match model {
        FenceModel::Unfenced => "unfenced",
        FenceModel::Fenced => "fenced",
    }
}

fn main() {
    banner("Fig. 2", "microbenchmark cycles/iteration");
    let iterations: u64 = std::env::var("NORUSH_MB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    let mut sweep = Sweep::new("fig02", &scale());
    for (_, model) in MODELS {
        for rmw in MicroRmw::ALL {
            for variant in MicroVariant::ALL {
                sweep.push(
                    format!("{}/{}/{}", rmw.name(), variant.name(), fence_tag(model)),
                    JobSpec::Micro {
                        rmw,
                        variant,
                        fence: model,
                        iterations,
                    },
                );
            }
        }
    }
    let r = run_sweep(&sweep);
    for (label, model) in MODELS {
        println!("{label}:");
        let mut table = Table::new(&["rmw", "plain", "plain+mfence", "lock", "lock+mfence"]);
        for rmw in MicroRmw::ALL {
            let cpi = |variant: MicroVariant| {
                let cell = format!("{}/{}/{}", rmw.name(), variant.name(), fence_tag(model));
                format!("{:.1}", r.cycles(&cell) / iterations as f64)
            };
            let [a, b, c, d] = MicroVariant::ALL;
            table.row([rmw.name().to_string(), cpi(a), cpi(b), cpi(c), cpi(d)]);
        }
        table.print();
        println!();
    }
}
