//! Fig. 2: cycles per iteration of the RMW microbenchmark, on fenced
//! (Kentsfield-like) and unfenced (Coffee-Lake-like) core models.

use row_bench::{banner, parallel_map};
use row_common::config::FenceModel;
use row_sim::run_microbench;
use row_workloads::{MicroRmw, MicroVariant};

fn main() {
    banner("Fig. 2", "microbenchmark cycles/iteration");
    let iters: u64 = std::env::var("NORUSH_MB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    for (label, model) in [
        ("Intel i5-9400F-like (unfenced)", FenceModel::Unfenced),
        ("Intel Xeon X3210-like (fenced)", FenceModel::Fenced),
    ] {
        println!("{label}:");
        println!(
            "{:6} {:>9} {:>14} {:>9} {:>13}",
            "", "plain", "plain+mfence", "lock", "lock+mfence"
        );
        let cells: Vec<(MicroRmw, MicroVariant)> = MicroRmw::ALL
            .into_iter()
            .flat_map(|r| MicroVariant::ALL.into_iter().map(move |v| (r, v)))
            .collect();
        let results = parallel_map(cells, |&(r, v)| {
            run_microbench(r, v, model, iters).expect("microbench run")
        });
        for (i, rmw) in MicroRmw::ALL.into_iter().enumerate() {
            print!("{:6}", rmw.name());
            for (j, _) in MicroVariant::ALL.into_iter().enumerate() {
                let w = [9, 14, 9, 13][j];
                print!(" {:>w$.1}", results[i * 4 + j], w = w);
            }
            println!();
        }
        println!();
    }
}
