//! Component microbenchmarks and design-choice ablations.
//!
//! These quantify the cost of the structures DESIGN.md calls out: the
//! contention predictor (per-lookup/train cost), the three predictor update
//! policies, the cache array, the mesh router, the TAGE predictor and the
//! event wheel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use row_common::config::{CacheConfig, NocConfig, PredictorKind};
use row_common::ids::{LineAddr, Pc};
use row_common::sched::EventQueue;
use row_common::Cycle;
use row_core::predictor::ContentionPredictor;
use row_cpu::branch::TageLite;
use row_mem::array::CacheArray;
use row_noc::{Mesh, MsgClass, NodeId};

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_predictor");
    for kind in [
        PredictorKind::UpDown,
        PredictorKind::SaturateOnContention,
        PredictorKind::TwoUpOneDown,
    ] {
        g.bench_function(format!("train+predict/{kind:?}"), |b| {
            let mut p = ContentionPredictor::new(kind, 64, 4, 1);
            let mut i = 0u64;
            b.iter(|| {
                let pc = Pc::new(0x400 + (i % 97) * 4);
                p.train(pc, i.is_multiple_of(3));
                i += 1;
                black_box(p.predict(pc))
            })
        });
    }
    g.finish();
}

fn bench_cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    g.bench_function("l1d_insert_touch", |b| {
        let mut arr = CacheArray::new(CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            hit_latency: 5,
        });
        let mut i = 0u64;
        b.iter(|| {
            let line = LineAddr::new(i % 4096);
            i += 1;
            arr.insert(line, |_| true);
            black_box(arr.touch(line))
        })
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_mesh");
    g.bench_function("send_8x4", |b| {
        let mut m = Mesh::new(NocConfig::mesh_8x4(), 32);
        let mut i = 0u64;
        b.iter(|| {
            let s = NodeId::new((i % 32) as u16);
            let d = NodeId::new(((i * 7) % 32) as u16);
            i += 1;
            black_box(m.send(s, d, MsgClass::Data, Cycle::new(i)))
        })
    });
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch_predictor");
    g.bench_function("tage_predict_update", |b| {
        let mut bp = TageLite::new();
        let mut i = 0u64;
        b.iter(|| {
            let pc = Pc::new(0x1000 + (i % 61) * 4);
            let taken = !(i / 61).is_multiple_of(3);
            let pred = bp.predict(pc);
            bp.update(pc, taken, pred);
            i += 1;
            black_box(pred)
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_wheel");
    g.bench_function("push_pop", |b| {
        let mut q = EventQueue::new();
        let mut i = 0u64;
        b.iter(|| {
            q.push(Cycle::new(i + (i * 31) % 100), i);
            i += 1;
            black_box(q.pop_ready(Cycle::new(i)))
        })
    });
    g.finish();
}

criterion_group!(
    components,
    bench_predictor,
    bench_cache_array,
    bench_mesh,
    bench_tage,
    bench_event_queue,
);
criterion_main!(components);
