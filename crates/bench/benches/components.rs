//! Component microbenchmarks and design-choice ablations.
//!
//! These quantify the cost of the structures DESIGN.md calls out: the
//! contention predictor (per-lookup/train cost), the three predictor update
//! policies, the cache array, the mesh router, the TAGE predictor and the
//! event wheel. The harness is plain `std` (no external bench framework):
//! each case runs a fixed number of operations and reports ns per op.

use std::hint::black_box;
use std::time::Instant;

use row_common::config::{CacheConfig, NocConfig, PredictorKind};
use row_common::ids::{LineAddr, Pc};
use row_common::sched::EventQueue;
use row_common::Cycle;
use row_core::predictor::ContentionPredictor;
use row_cpu::branch::TageLite;
use row_mem::array::CacheArray;
use row_noc::{Mesh, MsgClass, NodeId};

const OPS: u64 = 200_000;

fn bench<T>(name: &str, mut op: impl FnMut(u64) -> T) {
    let t0 = Instant::now();
    for i in 0..OPS {
        black_box(op(i));
    }
    let ns = t0.elapsed().as_nanos() as f64 / OPS as f64;
    println!("{name:<44} {ns:>8.1} ns/op   ({OPS} ops)");
}

fn bench_predictor() {
    for kind in [
        PredictorKind::UpDown,
        PredictorKind::SaturateOnContention,
        PredictorKind::TwoUpOneDown,
    ] {
        let mut p = ContentionPredictor::new(kind, 64, 4, 1);
        bench(&format!("predictor/train+predict/{kind:?}"), |i| {
            let pc = Pc::new(0x400 + (i % 97) * 4);
            p.train(pc, i.is_multiple_of(3));
            p.predict(pc)
        });
    }
}

fn bench_cache_array() {
    let mut arr = CacheArray::new(CacheConfig {
        size_bytes: 48 * 1024,
        ways: 12,
        hit_latency: 5,
    });
    bench("cache_array/l1d_insert_touch", |i| {
        let line = LineAddr::new(i % 4096);
        arr.insert(line, |_| true);
        arr.touch(line)
    });
}

fn bench_mesh() {
    let mut m = Mesh::new(NocConfig::mesh_8x4(), 32);
    bench("noc_mesh/send_8x4", |i| {
        let s = NodeId::new((i % 32) as u16);
        let d = NodeId::new(((i * 7) % 32) as u16);
        m.send(s, d, MsgClass::Data, Cycle::new(i))
    });
}

fn bench_tage() {
    let mut bp = TageLite::new();
    bench("branch_predictor/tage_predict_update", |i| {
        let pc = Pc::new(0x1000 + (i % 61) * 4);
        let taken = !(i / 61).is_multiple_of(3);
        let pred = bp.predict(pc);
        bp.update(pc, taken, pred);
        pred
    });
}

fn bench_event_queue() {
    let mut q = EventQueue::new();
    bench("event_wheel/push_pop", |i| {
        q.push(Cycle::new(i + (i * 31) % 100), i);
        q.pop_ready(Cycle::new(i + 1))
    });
}

fn main() {
    bench_predictor();
    bench_cache_array();
    bench_mesh();
    bench_tage();
    bench_event_queue();
}
