//! Criterion benches: one group per paper table/figure.
//!
//! Each bench runs the figure's core measurement at a reduced, fixed scale
//! (4 cores, short traces) so `cargo bench` finishes in minutes while still
//! exercising the exact code paths the figure binaries use. Run the
//! `src/bin/fig*` binaries for full-size, paper-shaped output.

use criterion::{criterion_group, criterion_main, Criterion};

use row_common::config::{AtomicPolicy, DetectorKind, FenceModel, PredictorKind, RowConfig};
use row_sim::{
    run_benchmark, run_eager, run_lazy, run_microbench, run_row, run_row_fwd, ExperimentConfig,
    RowVariant,
};
use row_workloads::{Benchmark, MicroRmw, MicroVariant};

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        cores: 4,
        instructions: 1_500,
        seed: 42,
        cycle_limit: 50_000_000,
        paper_caches: false,
    }
}

fn bench_fig01(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig01_lazy_vs_eager");
    g.sample_size(10);
    for b in [Benchmark::Canneal, Benchmark::Pc] {
        g.bench_function(format!("eager/{b}"), |x| {
            x.iter(|| run_eager(b, &exp).expect("runs").cycles)
        });
        g.bench_function(format!("lazy/{b}"), |x| {
            x.iter(|| run_lazy(b, &exp).expect("runs").cycles)
        });
    }
    g.finish();
}

fn bench_fig02(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_microbench");
    g.sample_size(10);
    for (name, variant) in [
        ("plain", MicroVariant { atomic: false, mfence: false }),
        ("lock", MicroVariant { atomic: true, mfence: false }),
        ("lock+mfence", MicroVariant { atomic: true, mfence: true }),
    ] {
        g.bench_function(format!("unfenced/{name}"), |x| {
            x.iter(|| run_microbench(MicroRmw::Faa, variant, FenceModel::Unfenced, 200).expect("runs"))
        });
        g.bench_function(format!("fenced/{name}"), |x| {
            x.iter(|| run_microbench(MicroRmw::Faa, variant, FenceModel::Fenced, 200).expect("runs"))
        });
    }
    g.finish();
}

fn bench_fig04(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig04_independent_instrs");
    g.sample_size(10);
    g.bench_function("probes/tpcc", |x| {
        x.iter(|| {
            let e = run_eager(Benchmark::Tpcc, &exp).expect("runs");
            let l = run_lazy(Benchmark::Tpcc, &exp).expect("runs");
            (
                e.total.older_unexecuted_at_issue.mean(),
                l.total.younger_started_at_issue.mean(),
            )
        })
    });
    g.finish();
}

fn bench_fig05(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig05_intensity_contention");
    g.sample_size(10);
    g.bench_function("eager/sps", |x| {
        x.iter(|| {
            let r = run_eager(Benchmark::Sps, &exp).expect("runs");
            (r.total.atomics_per_10k(), r.total.contended_fraction())
        })
    });
    g.finish();
}

fn bench_fig06(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig06_latency_breakdown");
    g.sample_size(10);
    g.bench_function("breakdown/pc", |x| {
        x.iter(|| {
            let e = run_eager(Benchmark::Pc, &exp).expect("runs");
            e.total.breakdown.total_mean()
        })
    });
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig09_row_variants");
    g.sample_size(10);
    for v in [RowVariant::EwUd, RowVariant::RwUd, RowVariant::RwDirUd, RowVariant::RwDirSat] {
        g.bench_function(format!("{}/pc", v.name()), |x| {
            x.iter(|| run_row(Benchmark::Pc, v, &exp).expect("runs").cycles)
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig10_threshold_sweep");
    g.sample_size(10);
    for t in [0u64, 400, 2_000] {
        let cfg = RowConfig::new(
            DetectorKind::ReadyWindowDir { latency_threshold: t },
            PredictorKind::UpDown,
        );
        g.bench_function(format!("threshold_{t}/canneal"), |x| {
            x.iter(|| {
                run_benchmark(Benchmark::Canneal, AtomicPolicy::Row(cfg), false, &exp)
                    .expect("runs")
                    .cycles
            })
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig11_miss_latency");
    g.sample_size(10);
    g.bench_function("miss_latency/sps", |x| {
        x.iter(|| {
            let e = run_eager(Benchmark::Sps, &exp).expect("runs");
            let l = run_lazy(Benchmark::Sps, &exp).expect("runs");
            (e.miss_latency.mean(), l.miss_latency.mean())
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig12_accuracy");
    g.sample_size(10);
    g.bench_function("accuracy/tpcc", |x| {
        x.iter(|| {
            run_row(Benchmark::Tpcc, RowVariant::RwDirUd, &exp)
                .expect("runs")
                .accuracy
                .expect("row accuracy")
                .accuracy()
        })
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let exp = tiny();
    let mut g = c.benchmark_group("fig13_forwarding");
    g.sample_size(10);
    g.bench_function("row_fwd/cq", |x| {
        x.iter(|| run_row_fwd(Benchmark::Cq, RowVariant::RwDirUd, &exp).expect("runs").cycles)
    });
    g.bench_function("row_nofwd/cq", |x| {
        x.iter(|| run_row(Benchmark::Cq, RowVariant::RwDirUd, &exp).expect("runs").cycles)
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_system_build");
    g.bench_function("memory_system_construction", |x| {
        x.iter(|| row_mem::MemorySystem::new(&row_common::SystemConfig::alder_lake_32c()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig01,
    bench_fig02,
    bench_fig04,
    bench_fig05,
    bench_fig06,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
);
criterion_main!(figures);
