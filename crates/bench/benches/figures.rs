//! Figure benches: one timed group per paper table/figure.
//!
//! Each bench runs the figure's core measurement at a reduced, fixed scale
//! (4 cores, short traces) so `cargo bench` finishes in minutes while still
//! exercising the exact code paths the figure binaries use. Run the
//! `src/bin/fig*` binaries for full-size, paper-shaped output.
//!
//! The harness is plain `std` (no external bench framework): each case runs
//! a fixed number of iterations and reports mean and minimum wall time.

use std::hint::black_box;
use std::time::Instant;

use row_common::config::{
    AtomicPolicy, CheckConfig, DetectorKind, FenceModel, PredictorKind, RowConfig,
};
use row_sim::{
    run_benchmark, run_eager, run_lazy, run_microbench, run_row, run_row_fwd, ExperimentConfig,
    RowVariant,
};
use row_workloads::{Benchmark, MicroRmw, MicroVariant};

const ITERS: u32 = 3;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut best = u128::MAX;
    let mut total = 0u128;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_micros();
        best = best.min(dt);
        total += dt;
    }
    println!(
        "{name:<44} mean {:>9} us   min {:>9} us   ({ITERS} iters)",
        total / u128::from(ITERS),
        best
    );
}

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        cores: 4,
        instructions: 1_500,
        seed: 42,
        cycle_limit: 50_000_000,
        paper_caches: false,
        check: CheckConfig::default(),
    }
}

fn bench_fig01(exp: &ExperimentConfig) {
    for b in [Benchmark::Canneal, Benchmark::Pc] {
        bench(&format!("fig01/eager/{b}"), || {
            run_eager(b, exp).expect("runs").cycles
        });
        bench(&format!("fig01/lazy/{b}"), || {
            run_lazy(b, exp).expect("runs").cycles
        });
    }
}

fn bench_fig02() {
    for (name, variant) in [
        (
            "plain",
            MicroVariant {
                atomic: false,
                mfence: false,
            },
        ),
        (
            "lock",
            MicroVariant {
                atomic: true,
                mfence: false,
            },
        ),
        (
            "lock+mfence",
            MicroVariant {
                atomic: true,
                mfence: true,
            },
        ),
    ] {
        bench(&format!("fig02/unfenced/{name}"), || {
            run_microbench(MicroRmw::Faa, variant, FenceModel::Unfenced, 200).expect("runs")
        });
        bench(&format!("fig02/fenced/{name}"), || {
            run_microbench(MicroRmw::Faa, variant, FenceModel::Fenced, 200).expect("runs")
        });
    }
}

fn bench_fig04(exp: &ExperimentConfig) {
    bench("fig04/probes/tpcc", || {
        let e = run_eager(Benchmark::Tpcc, exp).expect("runs");
        let l = run_lazy(Benchmark::Tpcc, exp).expect("runs");
        (
            e.total.older_unexecuted_at_issue.mean(),
            l.total.younger_started_at_issue.mean(),
        )
    });
}

fn bench_fig05(exp: &ExperimentConfig) {
    bench("fig05/eager/sps", || {
        let r = run_eager(Benchmark::Sps, exp).expect("runs");
        (r.total.atomics_per_10k(), r.total.contended_fraction())
    });
}

fn bench_fig06(exp: &ExperimentConfig) {
    bench("fig06/breakdown/pc", || {
        let e = run_eager(Benchmark::Pc, exp).expect("runs");
        e.total.breakdown.total_mean()
    });
}

fn bench_fig09(exp: &ExperimentConfig) {
    for v in [
        RowVariant::EwUd,
        RowVariant::RwUd,
        RowVariant::RwDirUd,
        RowVariant::RwDirSat,
    ] {
        bench(&format!("fig09/{}/pc", v.name()), || {
            run_row(Benchmark::Pc, v, exp).expect("runs").cycles
        });
    }
}

fn bench_fig10(exp: &ExperimentConfig) {
    for t in [0u64, 400, 2_000] {
        let cfg = RowConfig::new(
            DetectorKind::ReadyWindowDir {
                latency_threshold: t,
            },
            PredictorKind::UpDown,
        );
        bench(&format!("fig10/threshold_{t}/canneal"), || {
            run_benchmark(Benchmark::Canneal, AtomicPolicy::Row(cfg), false, exp)
                .expect("runs")
                .cycles
        });
    }
}

fn bench_fig11(exp: &ExperimentConfig) {
    bench("fig11/miss_latency/sps", || {
        let e = run_eager(Benchmark::Sps, exp).expect("runs");
        let l = run_lazy(Benchmark::Sps, exp).expect("runs");
        (e.miss_latency.mean(), l.miss_latency.mean())
    });
}

fn bench_fig12(exp: &ExperimentConfig) {
    bench("fig12/accuracy/tpcc", || {
        run_row(Benchmark::Tpcc, RowVariant::RwDirUd, exp)
            .expect("runs")
            .accuracy
            .expect("row accuracy")
            .accuracy()
    });
}

fn bench_fig13(exp: &ExperimentConfig) {
    bench("fig13/row_fwd/cq", || {
        run_row_fwd(Benchmark::Cq, RowVariant::RwDirUd, exp)
            .expect("runs")
            .cycles
    });
    bench("fig13/row_nofwd/cq", || {
        run_row(Benchmark::Cq, RowVariant::RwDirUd, exp)
            .expect("runs")
            .cycles
    });
}

fn bench_table1() {
    bench("table1/memory_system_construction", || {
        row_mem::MemorySystem::new(&row_common::SystemConfig::alder_lake_32c())
    });
}

fn main() {
    let exp = tiny();
    bench_table1();
    bench_fig01(&exp);
    bench_fig02();
    bench_fig04(&exp);
    bench_fig05(&exp);
    bench_fig06(&exp);
    bench_fig09(&exp);
    bench_fig10(&exp);
    bench_fig11(&exp);
    bench_fig12(&exp);
    bench_fig13(&exp);
}
