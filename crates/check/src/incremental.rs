//! Incremental coherence checking over dirty-line sets.
//!
//! The full [`check_coherence`] sweep walks every private cache and every
//! directory bank — O(total cached lines × cores) — which at paper scale
//! (32+ cores, every-2048-cycle cadence) dominates checking cost. But between
//! two sweeps only the lines that carried protocol traffic can have changed
//! state, and the [`MemorySystem`] records exactly those when
//! [`MemorySystem::track_dirty_lines`] is on. [`IncrementalSweep`] re-checks
//! only that set, querying each dirty line's private states, lock bits, and
//! home entry directly — O(dirty lines × cores) per sweep.
//!
//! The verdict contract: a state that passes the full sweep passes the
//! incremental sweep, and a violation on a line is reported no later than
//! the first sweep after that line carries traffic (or is corrupted via the
//! test hooks, which mark the line dirty too). The first sweep after
//! construction or [`IncrementalSweep::invalidate`] (post-restore) is a full
//! sweep, so no pre-existing violation can hide in a never-dirty line.

use row_common::config::CheckConfig;
use row_common::ids::{CoreId, LineAddr};
use row_mem::{DirState, MemorySystem, PrivState, ProtocolError};

use crate::invariant::{check_coherence, default_queue_bound};

/// Incremental invariant sweeper; owns the primed flag and scratch buffers.
#[derive(Clone, Debug, Default)]
pub struct IncrementalSweep {
    /// Whether a full sweep has validated the complete state since
    /// construction/restore; until then every sweep is a full sweep.
    primed: bool,
    /// Scratch: holders of the line under check (reused across lines).
    holders: Vec<(CoreId, PrivState)>,
    /// Scratch: the drained dirty lines, sorted ascending.
    dirty: Vec<LineAddr>,
}

impl IncrementalSweep {
    /// Creates an unprimed sweeper (first sweep will be full).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces the next sweep to be a full sweep. Call after a checkpoint
    /// restore: the dirty set is not persisted, so the restored state must
    /// be validated wholesale once before line-level increments resume.
    pub fn invalidate(&mut self) {
        self.primed = false;
    }

    /// Checks the invariants over every line dirtied since the last sweep
    /// (or the whole system when unprimed). Drains the memory system's
    /// dirty-line set either way.
    pub fn sweep(
        &mut self,
        mem: &mut MemorySystem,
        cfg: &CheckConfig,
    ) -> Result<(), ProtocolError> {
        self.dirty = mem.take_dirty_lines();
        if !self.primed {
            let r = check_coherence(mem, cfg);
            self.primed = r.is_ok();
            return r;
        }
        let cores = mem.cores();
        let bound = if cfg.blocked_queue_bound > 0 {
            cfg.blocked_queue_bound
        } else {
            default_queue_bound(cores)
        };
        // Locked ⇒ M, checked once over every held lock (the lock sets are
        // tiny — bounded by AQ depth) instead of per dirty line × core.
        for i in 0..cores {
            let core = CoreId::new(i as u16);
            for line in mem.locked_lines_iter(core) {
                let state = mem.priv_state(core, line);
                if state != Some(PrivState::M) {
                    return Err(ProtocolError::LockedLineNotModified { core, line, state });
                }
            }
        }
        let holders = &mut self.holders;
        for &line in &self.dirty {
            check_line(mem, line, bound, holders)?;
        }
        Ok(())
    }
}

/// Checks SWMR, directory agreement, and the Blocked-queue bound for a
/// single line — the same rules [`check_coherence`] applies globally
/// (locked ⇒ M is enforced separately over the lock sets).
fn check_line(
    mem: &MemorySystem,
    line: LineAddr,
    bound: usize,
    holders: &mut Vec<(CoreId, PrivState)>,
) -> Result<(), ProtocolError> {
    holders.clear();
    let mut owner_count = 0usize;
    for i in 0..mem.cores() {
        let core = CoreId::new(i as u16);
        if let Some(s) = mem.priv_state(core, line) {
            if matches!(s, PrivState::M | PrivState::E) {
                owner_count += 1;
            }
            holders.push((core, s));
        }
    }

    // SWMR. `holders` is in ascending core order, so `owners` is sorted.
    if owner_count > 1 {
        let owners: Vec<CoreId> = holders
            .iter()
            .filter(|(_, s)| matches!(s, PrivState::M | PrivState::E))
            .map(|&(c, _)| c)
            .collect();
        return Err(ProtocolError::MultipleOwners { line, owners });
    }

    // Directory agreement (Blocked entries are mid-transaction: skip, but
    // still enforce the queue bound on them).
    let dir = mem.dir_state(line);
    if dir == DirState::Blocked {
        if let Some((tile, depth)) = mem.dir_blocked_depth(line) {
            if depth > bound {
                return Err(ProtocolError::BlockedQueueOverflow {
                    tile,
                    line,
                    depth,
                    bound,
                });
            }
        }
        return Ok(());
    }
    for &(core, state) in holders.iter() {
        if state == PrivState::Evicting {
            continue; // PutM in flight; WbStale races are legal
        }
        let legal = match &dir {
            DirState::Uncached => false,
            DirState::Exclusive(o) => core == *o,
            DirState::Shared(s) => state == PrivState::S && s.contains(&core),
            DirState::Blocked => true,
        };
        if !legal {
            return Err(ProtocolError::DirectoryMismatch {
                line,
                core,
                dir: dir.clone(),
                cache: Some(state),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::SystemConfig;
    use row_common::rng::SplitMix64;
    use row_common::Cycle;
    use row_mem::{AccessKind, MemEvent, ReqMeta};
    use std::collections::BTreeSet;

    fn meta(id: u64, kind: AccessKind) -> ReqMeta {
        ReqMeta {
            req_id: id,
            pc: None,
            prefetch: false,
            kind,
        }
    }

    /// Randomized traffic: after every burst, the incremental sweep and a
    /// fresh full sweep must agree (both clean on legal traffic), and the
    /// dirty set must drain.
    #[test]
    fn incremental_agrees_with_full_on_legal_traffic() {
        let sys = SystemConfig::small(4);
        let mut mem = MemorySystem::new(&sys);
        mem.track_dirty_lines(true);
        let mut sweep = IncrementalSweep::new();
        let mut rng = SplitMix64::new(0xdecaf);
        let lines = [300u64, 301, 302, 400, 401, 777];
        let mut next_id = 1u64;
        let mut unlocks: Vec<(Cycle, CoreId, LineAddr)> = Vec::new();
        let mut busy: BTreeSet<u16> = BTreeSet::new();

        for c in 0..20_000u64 {
            let now = Cycle::new(c);
            if c % 89 == 0 {
                let core = (rng.below(4)) as u16;
                let line = LineAddr::new(lines[rng.below(lines.len() as u64) as usize]);
                let kind = match rng.below(4) {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Rmw,
                };
                if kind != AccessKind::Rmw || !busy.contains(&core) {
                    if kind == AccessKind::Rmw {
                        busy.insert(core);
                    }
                    mem.access(CoreId::new(core), line, meta(next_id, kind), now);
                    next_id += 1;
                }
            }
            for ev in mem.tick(now) {
                if let MemEvent::Fill {
                    core,
                    line,
                    kind: AccessKind::Rmw,
                    at,
                    ..
                } = ev
                {
                    unlocks.push((at + 25, core, line));
                }
            }
            unlocks.retain(|&(when, core, line)| {
                if when <= now {
                    mem.unlock(core, line, now);
                    busy.remove(&(core.index() as u16));
                    false
                } else {
                    true
                }
            });
            if c % 64 == 0 {
                sweep
                    .sweep(&mut mem, &sys.check)
                    .expect("incremental sweep tripped on legal traffic");
                check_coherence(&mem, &sys.check).expect("full sweep disagrees");
            }
        }
    }

    /// A corruption planted through the test hooks lands in the dirty set,
    /// so the very next incremental sweep reports the same violation class
    /// the full sweep does.
    #[test]
    fn incremental_catches_planted_corruption() {
        let sys = SystemConfig::small(2);
        let mut mem = MemorySystem::new(&sys);
        mem.track_dirty_lines(true);
        let mut sweep = IncrementalSweep::new();
        let line = LineAddr::new(7);
        mem.access(
            CoreId::new(0),
            line,
            meta(1, AccessKind::Write),
            Cycle::ZERO,
        );
        for c in 0..3000u64 {
            let _ = mem.tick(Cycle::new(c));
        }
        assert_eq!(mem.priv_state(CoreId::new(0), line), Some(PrivState::M));
        sweep.sweep(&mut mem, &sys.check).expect("clean (primes)");
        sweep
            .sweep(&mut mem, &sys.check)
            .expect("clean (incremental)");

        mem.corrupt_private_state_for_test(CoreId::new(1), line, Some(PrivState::M));
        let inc = sweep.sweep(&mut mem, &sys.check).unwrap_err();
        let full = check_coherence(&mem, &sys.check).unwrap_err();
        assert!(
            matches!(inc, ProtocolError::MultipleOwners { .. }),
            "incremental: {inc}"
        );
        assert_eq!(format!("{inc}"), format!("{full}"), "verdicts must match");
    }

    /// After `invalidate` (the restore path), the next sweep is full: a
    /// violation on a line that was never dirtied post-restore is still
    /// found.
    #[test]
    fn invalidate_forces_full_sweep() {
        let sys = SystemConfig::small(2);
        let mut mem = MemorySystem::new(&sys);
        mem.track_dirty_lines(true);
        let mut sweep = IncrementalSweep::new();
        let line = LineAddr::new(11);
        mem.access(
            CoreId::new(0),
            line,
            meta(1, AccessKind::Write),
            Cycle::ZERO,
        );
        for c in 0..3000u64 {
            let _ = mem.tick(Cycle::new(c));
        }
        sweep.sweep(&mut mem, &sys.check).expect("primes clean");

        // Corrupt, then throw the dirty evidence away (as a crash between
        // checkpoint and corruption would): only a full sweep can see it.
        mem.corrupt_dir_state_for_test(line, DirState::Uncached);
        let _ = mem.take_dirty_lines();
        sweep
            .sweep(&mut mem, &sys.check)
            .expect("incremental sweep cannot see a never-dirty line");
        sweep.invalidate();
        let err = sweep.sweep(&mut mem, &sys.check).unwrap_err();
        assert!(matches!(err, ProtocolError::DirectoryMismatch { .. }));
    }
}
