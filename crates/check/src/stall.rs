//! Structured deadlock/livelock diagnostics.
//!
//! When the simulation loop's watchdog sees no core commit for a whole
//! window, *something* is wedged — a lost message, a transaction stuck in a
//! Blocked directory entry, a lock never released. A [`StallReport`]
//! captures everything needed to tell those apart without a debugger:
//! per-core pipeline occupancy and the head instruction each core is stuck
//! on, the lines with in-flight misses or held locks, every Blocked
//! directory entry with its queued requesters, and how far into the future
//! the NoC's links are reserved.

use row_common::ids::{CoreId, LineAddr};
use row_common::Cycle;
use row_cpu::Core;
use row_mem::{BlockedEntrySnapshot, BlockedPhase, InflightProbe, MemorySystem};

/// Why one core is (or is not) making progress.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoreStallInfo {
    /// The core.
    pub core: CoreId,
    /// Instructions committed so far.
    pub committed: u64,
    /// Cycle of the most recent commit.
    pub last_commit: Cycle,
    /// Occupied ROB entries.
    pub rob: usize,
    /// Occupied store-buffer entries.
    pub sb: usize,
    /// Occupied atomic-queue entries.
    pub aq: usize,
    /// The ROB-head instruction the core is waiting on, if any.
    pub head: Option<String>,
    /// Lines with an in-flight miss at this core.
    pub mshrs: Vec<LineAddr>,
    /// Lines this core holds locked.
    pub locked: Vec<LineAddr>,
}

/// A Blocked directory entry, tagged with its home bank.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockedDirInfo {
    /// The home bank's tile.
    pub tile: usize,
    /// The entry snapshot (phase + queued requesters).
    pub entry: BlockedEntrySnapshot,
}

/// A full diagnostic snapshot of a machine that stopped committing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StallReport {
    /// The cycle the snapshot was taken.
    pub at: Cycle,
    /// The watchdog window that expired, when the report was triggered by
    /// the watchdog (`None` for on-demand or timeout snapshots).
    pub window: Option<u64>,
    /// Per-core progress and pipeline state.
    pub cores: Vec<CoreStallInfo>,
    /// Every Blocked directory entry across all banks.
    pub blocked: Vec<BlockedDirInfo>,
    /// The latest link `busy_until` across the mesh.
    pub noc_busy_until: Cycle,
    /// The oldest un-ACKed lossy-transport transaction, when lossy chaos is
    /// active — separates "a message is lost and still being retried" from a
    /// genuine protocol livelock.
    pub oldest_transport: Option<InflightProbe>,
}

impl StallReport {
    /// Captures a snapshot of `cores` and `mem` at cycle `at`.
    pub fn capture(cores: &[Core], mem: &MemorySystem, at: Cycle, window: Option<u64>) -> Self {
        let cores_info = cores
            .iter()
            .map(|c| {
                let id = c.id();
                CoreStallInfo {
                    core: id,
                    committed: c.stats().committed,
                    last_commit: c.last_commit(),
                    rob: c.rob_occupancy(),
                    sb: c.sb_occupancy(),
                    aq: c.aq_occupancy(),
                    head: c.head_instr(),
                    mshrs: mem.mshr_lines(id),
                    locked: mem.locked_lines(id),
                }
            })
            .collect();
        let blocked = mem
            .blocked_dir_entries()
            .into_iter()
            .map(|(tile, entry)| BlockedDirInfo { tile, entry })
            .collect();
        StallReport {
            at,
            window,
            cores: cores_info,
            blocked,
            noc_busy_until: mem.noc_busy_horizon(),
            oldest_transport: mem.oldest_inflight(),
        }
    }

    /// The cores that have not committed within `window` cycles of the
    /// snapshot (the stalled set the watchdog fired on).
    pub fn stalled_cores(&self) -> Vec<CoreId> {
        let Some(w) = self.window else {
            return self.cores.iter().map(|c| c.core).collect();
        };
        self.cores
            .iter()
            .filter(|c| self.at.saturating_since(c.last_commit) >= w)
            .map(|c| c.core)
            .collect()
    }
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.window {
            Some(w) => writeln!(
                f,
                "stall report at cycle {}: no commit for {} cycles",
                self.at, w
            )?,
            None => writeln!(f, "stall report at cycle {}", self.at)?,
        }
        for c in &self.cores {
            writeln!(
                f,
                "  {}: committed {} (last at {}), rob {}, sb {}, aq {}",
                c.core, c.committed, c.last_commit, c.rob, c.sb, c.aq
            )?;
            if let Some(head) = &c.head {
                writeln!(f, "    head: {head}")?;
            }
            if !c.mshrs.is_empty() {
                writeln!(f, "    mshrs: {:?}", c.mshrs)?;
            }
            if !c.locked.is_empty() {
                writeln!(f, "    locked: {:?}", c.locked)?;
            }
        }
        for b in &self.blocked {
            let phase = match &b.entry.phase {
                BlockedPhase::AwaitUnblock => "awaiting unblock".to_string(),
                BlockedPhase::CollectingAcks { req, pending, far } => format!(
                    "collecting {pending} acks for {req}{}",
                    if *far { " (far atomic)" } else { "" }
                ),
            };
            writeln!(
                f,
                "  dir bank {}: line {} blocked ({phase}), {} queued",
                b.tile,
                b.entry.line,
                b.entry.queued.len()
            )?;
            for q in &b.entry.queued {
                writeln!(f, "    queued: {q:?}")?;
            }
        }
        if let Some(t) = &self.oldest_transport {
            writeln!(f, "  noc links busy until {}", self.noc_busy_until)?;
            write!(
                f,
                "  oldest transport txn: {:?} -> {:?} seq {} in flight since {} ({} attempts)",
                t.src, t.dst, t.seq, t.first_sent, t.attempts
            )
        } else {
            write!(f, "  noc links busy until {}", self.noc_busy_until)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::SystemConfig;
    use row_common::ids::{Addr, Pc};
    use row_cpu::instr::{Instr, Op, VecStream};
    use row_mem::{AccessKind, ReqMeta};

    #[test]
    fn capture_names_head_instructions_and_locks() {
        let sys = SystemConfig::small(2);
        let mut mem = MemorySystem::new(&sys);

        // Give core 0 a locked line the report should surface.
        let line = LineAddr::new(42);
        mem.access(
            CoreId::new(0),
            line,
            ReqMeta {
                req_id: 1,
                pc: None,
                prefetch: false,
                kind: AccessKind::Rmw,
            },
            Cycle::ZERO,
        );
        for c in 0..3000u64 {
            let _ = mem.tick(Cycle::new(c));
        }
        assert!(mem.is_locked(CoreId::new(0), line));

        // A core with one unexecuted load sitting at the ROB head.
        let prog = vec![Instr::simple(
            Pc::new(0x40),
            Op::Load {
                addr: Addr::new(0x5000),
            },
        )];
        let mut core = Core::new(
            CoreId::new(0),
            sys.core,
            sys.mem.l1d.hit_latency,
            Box::new(VecStream::new(prog)),
        );
        core.cycle(Cycle::ZERO, &mut mem);
        let report = StallReport::capture(
            std::slice::from_ref(&core),
            &mem,
            Cycle::new(9000),
            Some(100),
        );
        assert_eq!(report.cores.len(), 1);
        assert_eq!(report.cores[0].locked, vec![line]);
        assert_eq!(report.stalled_cores(), vec![CoreId::new(0)]);
        let head = report.cores[0].head.as_deref().unwrap_or("");
        assert!(head.contains("load"), "head was {head:?}");
        let text = report.to_string();
        assert!(text.contains("locked"), "{text}");
        assert!(text.contains("stall report"), "{text}");
    }
}
