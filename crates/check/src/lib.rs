//! Robustness layer: coherence invariant checking and stall diagnostics.
//!
//! The timed simulation is only as trustworthy as its coherence protocol.
//! This crate provides two independent safety nets that run *against* a live
//! [`MemorySystem`] without perturbing it:
//!
//! * [`check_coherence`] — a snapshot sweep of the whole memory system that
//!   verifies the invariants the atomicity argument rests on: SWMR (at most
//!   one private M/E owner per line), agreement between each home directory
//!   entry and the private caches, boundedness of Blocked-entry wait queues,
//!   and the cache-locking precondition (a locked line is held in M).
//!   Violations surface as [`ProtocolError`]s, the same type the controllers
//!   themselves raise.
//! * [`IncrementalSweep`] — the same invariants driven by the memory
//!   system's dirty-line set, so the periodic in-run sweep touches only
//!   O(lines changed since the last sweep) instead of the whole system.
//! * [`StallReport`] — a structured snapshot of *why* the machine stopped
//!   committing: per-core ROB/SB/AQ occupancy with the head instruction,
//!   in-flight MSHRs and held locks, every Blocked directory entry with its
//!   queued requesters, and the NoC's link-busy horizon. The simulation
//!   loop's deadlock watchdog captures one when no core commits for a
//!   configurable window.
//!
//! Both are deliberately *read-only* over the memory system so they can run
//! every K cycles in debug/test builds and on demand from diagnostics code.
//!
//! [`MemorySystem`]: row_mem::MemorySystem

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incremental;
pub mod invariant;
pub mod stall;

pub use incremental::IncrementalSweep;
pub use invariant::check_coherence;
pub use stall::{BlockedDirInfo, CoreStallInfo, StallReport};

// The violation type shared with the protocol controllers, re-exported for
// downstream convenience.
pub use row_mem::ProtocolError;
