//! The coherence invariant sweep.
//!
//! [`check_coherence`] snapshots a [`MemorySystem`] and verifies the
//! protocol-level invariants that the paper's atomicity argument rests on.
//! It is aware of every *legal* transient the unblock-based directory can
//! produce, so it holds at any cycle boundary of a correct run:
//!
//! * Lines whose home entry is **Blocked** are mid-transaction — ownership
//!   is changing hands and the directory's stable view is meaningless until
//!   the requester's `Unblock` lands, so directory agreement is not checked
//!   for them. SWMR **is** still checked: even mid-handoff there is never a
//!   cycle boundary with two private M/E copies (the old owner drops or
//!   downgrades before the new data message is sent).
//! * A private copy in **Evicting** has a `PutM` in flight; the directory
//!   may race it with forwards (`WbStale`), so Evicting copies are exempt
//!   from directory agreement.
//! * Sharer vectors are **supersets** of the true sharer set: S copies are
//!   dropped silently on eviction and the directory only learns at the next
//!   invalidation round (stale `InvAck`s are tolerated by design).

use std::collections::HashMap;

use row_common::config::CheckConfig;
use row_common::ids::{CoreId, LineAddr};
use row_mem::{DirState, MemorySystem, PrivState, ProtocolError};

/// The Blocked-entry queue bound used when the configuration leaves
/// [`CheckConfig::blocked_queue_bound`] at 0 (auto): every core can have at
/// most one demand request, one upgrade and one writeback racing for a line,
/// plus slack for prefetches and stale acks.
pub fn default_queue_bound(cores: usize) -> usize {
    3 * cores + 4
}

/// Sweeps the whole memory system and returns the first invariant violation
/// found, if any.
///
/// The sweep is read-only and safe to run at any cycle boundary (between
/// [`MemorySystem::tick`] calls). Checked invariants, in order:
///
/// 1. **SWMR** — at most one private cache holds each line in M or E.
/// 2. **Locked ⇒ M** — every line in a core's lock table is held in M
///    there (otherwise external requests would not stall against it).
/// 3. **Directory agreement** — for every line whose home entry is stable:
///    `Uncached` ⇒ no private copy; `Exclusive(o)` ⇒ no copy elsewhere;
///    `Shared(s)` ⇒ no M/E copy anywhere and every S copy is in `s`.
/// 4. **Blocked queue bound** — no Blocked entry queues more requests than
///    the configured (or derived) bound, which would indicate a wedged
///    transaction accreting requesters.
pub fn check_coherence(mem: &MemorySystem, cfg: &CheckConfig) -> Result<(), ProtocolError> {
    let cores = mem.cores();

    // Gather every privately held line once.
    let mut holders: HashMap<LineAddr, Vec<(CoreId, PrivState)>> = HashMap::new();
    for i in 0..cores {
        let core = CoreId::new(i as u16);
        for (line, state) in mem.private_lines(core) {
            holders.entry(line).or_default().push((core, state));
        }
    }

    // 1. SWMR.
    for (&line, hs) in &holders {
        let owners: Vec<CoreId> = hs
            .iter()
            .filter(|(_, s)| matches!(s, PrivState::M | PrivState::E))
            .map(|&(c, _)| c)
            .collect();
        if owners.len() > 1 {
            let mut owners = owners;
            owners.sort_by_key(|c| c.index());
            return Err(ProtocolError::MultipleOwners { line, owners });
        }
    }

    // 2. Locked lines must be held in M.
    for i in 0..cores {
        let core = CoreId::new(i as u16);
        for line in mem.locked_lines_iter(core) {
            let state = mem.priv_state(core, line);
            if state != Some(PrivState::M) {
                return Err(ProtocolError::LockedLineNotModified { core, line, state });
            }
        }
    }

    // 3. Directory agreement over the union of tracked and held lines.
    let mut lines: Vec<LineAddr> = holders.keys().copied().collect();
    for (line, _) in mem.dir_lines() {
        if !holders.contains_key(&line) {
            lines.push(line);
        }
    }
    for line in lines {
        let dir = mem.dir_state(line);
        if dir == DirState::Blocked {
            continue; // mid-transaction: stable view not meaningful
        }
        let empty = Vec::new();
        let hs = holders.get(&line).unwrap_or(&empty);
        for &(core, state) in hs {
            if state == PrivState::Evicting {
                continue; // PutM in flight; WbStale races are legal
            }
            let legal = match &dir {
                DirState::Uncached => false,
                DirState::Exclusive(o) => core == *o,
                DirState::Shared(s) => state == PrivState::S && s.contains(&core),
                DirState::Blocked => true,
            };
            if !legal {
                return Err(ProtocolError::DirectoryMismatch {
                    line,
                    core,
                    dir: dir.clone(),
                    cache: Some(state),
                });
            }
        }
    }

    // 4. Blocked-entry queue bound.
    let bound = if cfg.blocked_queue_bound > 0 {
        cfg.blocked_queue_bound
    } else {
        default_queue_bound(cores)
    };
    for (tile, entry) in mem.blocked_dir_entries() {
        let depth = entry.queued.len();
        if depth > bound {
            return Err(ProtocolError::BlockedQueueOverflow {
                tile,
                line: entry.line,
                depth,
                bound,
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use row_common::config::SystemConfig;
    use row_common::rng::SplitMix64;
    use row_common::Cycle;
    use row_mem::{AccessKind, MemEvent, ReqMeta};
    use std::collections::BTreeSet;

    fn meta(id: u64, kind: AccessKind) -> ReqMeta {
        ReqMeta {
            req_id: id,
            pc: None,
            prefetch: false,
            kind,
        }
    }

    /// Drives randomized multi-core load/store/RMW traffic straight into the
    /// memory system, unlocking every Rmw fill a few cycles later, and runs
    /// the sweep continuously. A correct protocol must never trip it.
    #[test]
    fn random_traffic_never_violates_invariants() {
        let sys = SystemConfig::small(4);
        let cfg = sys.check;
        let mut mem = MemorySystem::new(&sys);
        let mut rng = SplitMix64::new(0xc0ffee);
        let lines = [100u64, 101, 102, 200, 201];
        let mut next_id = 1u64;
        // (core, line) pairs whose lock should be released at the given cycle.
        let mut unlocks: Vec<(Cycle, CoreId, LineAddr)> = Vec::new();
        // Cores with an atomic in flight or held: don't issue another until
        // released (mirrors the one-atomic-at-a-time AQ head discipline).
        let mut busy: BTreeSet<u16> = BTreeSet::new();

        for c in 0..30_000u64 {
            let now = Cycle::new(c);
            if c % 97 == 0 {
                let core = (rng.below(4)) as u16;
                let line = LineAddr::new(lines[rng.below(lines.len() as u64) as usize]);
                let kind = match rng.below(4) {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Rmw,
                };
                if kind != AccessKind::Rmw || !busy.contains(&core) {
                    if kind == AccessKind::Rmw {
                        busy.insert(core);
                    }
                    mem.access(CoreId::new(core), line, meta(next_id, kind), now);
                    next_id += 1;
                }
            }
            for ev in mem.tick(now) {
                if let MemEvent::Fill {
                    core,
                    line,
                    kind: AccessKind::Rmw,
                    at,
                    ..
                } = ev
                {
                    unlocks.push((at + 30, core, line));
                }
            }
            unlocks.retain(|&(when, core, line)| {
                if when <= now {
                    mem.unlock(core, line, now);
                    busy.remove(&(core.index() as u16));
                    false
                } else {
                    true
                }
            });
            if c % 64 == 0 {
                check_coherence(&mem, &cfg).expect("invariant violated on legal traffic");
            }
            assert_eq!(mem.protocol_error(), None);
        }
        check_coherence(&mem, &cfg).expect("final sweep");
    }

    /// A hand-corrupted second Modified owner must be caught as SWMR.
    #[test]
    fn dual_modified_owner_is_detected() {
        let sys = SystemConfig::small(2);
        let mut mem = MemorySystem::new(&sys);
        let line = LineAddr::new(7);
        // Legitimately give core 0 the line in M.
        mem.access(
            CoreId::new(0),
            line,
            meta(1, AccessKind::Write),
            Cycle::ZERO,
        );
        for c in 0..3000u64 {
            let _ = mem.tick(Cycle::new(c));
        }
        assert_eq!(mem.priv_state(CoreId::new(0), line), Some(PrivState::M));
        check_coherence(&mem, &sys.check).expect("clean before corruption");

        mem.corrupt_private_state_for_test(CoreId::new(1), line, Some(PrivState::M));
        let err = check_coherence(&mem, &sys.check).unwrap_err();
        match err {
            ProtocolError::MultipleOwners { line: l, owners } => {
                assert_eq!(l, line);
                assert_eq!(owners, vec![CoreId::new(0), CoreId::new(1)]);
            }
            other => panic!("expected MultipleOwners, got {other}"),
        }
    }

    /// A directory entry corrupted to disagree with a live private copy must
    /// be caught as a directory mismatch.
    #[test]
    fn corrupted_directory_entry_is_detected() {
        let sys = SystemConfig::small(2);
        let mut mem = MemorySystem::new(&sys);
        let line = LineAddr::new(9);
        mem.access(
            CoreId::new(0),
            line,
            meta(1, AccessKind::Write),
            Cycle::ZERO,
        );
        for c in 0..3000u64 {
            let _ = mem.tick(Cycle::new(c));
        }
        assert_eq!(mem.priv_state(CoreId::new(0), line), Some(PrivState::M));

        // The home bank now claims the line is uncached.
        mem.corrupt_dir_state_for_test(line, DirState::Uncached);
        let err = check_coherence(&mem, &sys.check).unwrap_err();
        match err {
            ProtocolError::DirectoryMismatch {
                line: l,
                core,
                dir,
                cache,
            } => {
                assert_eq!(l, line);
                assert_eq!(core, CoreId::new(0));
                assert_eq!(dir, DirState::Uncached);
                assert_eq!(cache, Some(PrivState::M));
            }
            other => panic!("expected DirectoryMismatch, got {other}"),
        }
    }

    /// A stale sharer (superset sharer vector) is legal and must NOT trip
    /// the sweep; a *missing* sharer must.
    #[test]
    fn superset_sharer_vectors_are_tolerated_missing_sharers_are_not() {
        let sys = SystemConfig::small(2);
        let mut mem = MemorySystem::new(&sys);
        let line = LineAddr::new(11);
        for core in 0..2u16 {
            mem.access(
                CoreId::new(core),
                line,
                meta(u64::from(core) + 1, AccessKind::Read),
                Cycle::new(u64::from(core) * 3000),
            );
            for c in u64::from(core) * 3000..(u64::from(core) + 1) * 3000 {
                let _ = mem.tick(Cycle::new(c));
            }
        }
        assert_eq!(mem.priv_state(CoreId::new(0), line), Some(PrivState::S));
        assert_eq!(mem.priv_state(CoreId::new(1), line), Some(PrivState::S));
        check_coherence(&mem, &sys.check).expect("two sharers, both tracked");

        // Silent S-drop at core 1: vector is now a superset — still legal.
        mem.corrupt_private_state_for_test(CoreId::new(1), line, None);
        check_coherence(&mem, &sys.check).expect("superset sharer vector is legal");

        // Directory forgets core 0 while it still holds S: violation.
        let mut only1 = BTreeSet::new();
        only1.insert(CoreId::new(1));
        mem.corrupt_dir_state_for_test(line, DirState::Shared(only1));
        let err = check_coherence(&mem, &sys.check).unwrap_err();
        assert!(
            matches!(err, ProtocolError::DirectoryMismatch { core, .. } if core == CoreId::new(0)),
            "got {err}"
        );
    }

    /// The queue bound flags a Blocked entry that accretes too many waiters.
    #[test]
    fn blocked_queue_bound_uses_auto_default() {
        assert_eq!(default_queue_bound(4), 16);
        assert_eq!(default_queue_bound(32), 100);
    }
}
