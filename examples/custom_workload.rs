//! Build your own workload profile and sweep contention.
//!
//! Shows the crossover the RoW predictor exploits: as the fraction of
//! contended atomics grows, the best static policy flips from eager to lazy,
//! while RoW tracks the winner without retuning.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use norush::common::config::AtomicPolicy;
use norush::cpu::instr::InstrStream;
use norush::sim::Machine;
use norush::workloads::{ProfileStream, WorkloadProfile};
use norush::SystemConfig;

const CORES: usize = 8;

fn run(profile: WorkloadProfile, policy: AtomicPolicy) -> u64 {
    let sys = SystemConfig::small(CORES).with_policy(policy);
    let streams: Vec<Box<dyn InstrStream>> = (0..CORES)
        .map(|t| Box::new(ProfileStream::new(profile, t, CORES, 99)) as Box<dyn InstrStream>)
        .collect();
    Machine::new(&sys, streams)
        .run(200_000_000)
        .expect("simulation finishes")
        .cycles
}

fn main() {
    let mut base = WorkloadProfile::balanced("custom");
    base.instructions = 5_000;
    base.atomics_per_10k = 80.0;
    base.hot_lines = 2;
    base.working_set_lines = 256;

    println!("sweeping contended fraction on a custom 80-atomics/10k workload\n");
    println!(
        "{:>10} {:>9} {:>9} {:>9}  best-static  RoW-within",
        "contended", "eager", "lazy", "RoW"
    );
    for pct in [0, 20, 40, 60, 80, 95] {
        let mut p = base;
        p.contended_fraction = pct as f64 / 100.0;
        let eager = run(p, AtomicPolicy::Eager);
        let lazy = run(p, AtomicPolicy::Lazy);
        let row = run(
            p,
            AtomicPolicy::Row(norush::common::config::RowConfig::best()),
        );
        let best = eager.min(lazy);
        println!(
            "{:>9}% {eager:>9} {lazy:>9} {row:>9}  {:>11}  {:>9.1}%",
            pct,
            if eager < lazy { "eager" } else { "lazy" },
            100.0 * (row as f64 - best as f64) / best as f64,
        );
    }
    println!("\nRoW stays within a few percent of the best static policy at every point.");
}
