//! Synchronization kernels under eager, lazy, and RoW.
//!
//! Runs the three structured kernels (`pc`-style producer/consumer,
//! `sps`-style shared counters, `cq`-style concurrent queue) on the real
//! pipeline and shows the crossover the paper is built on: contention favours
//! waiting, locality favours rushing.
//!
//! ```text
//! cargo run --release --example spinlock_contention
//! ```

use norush::common::config::{AtomicPolicy, RowConfig, SystemConfig};
use norush::cpu::instr::InstrStream;
use norush::sim::Machine;
use norush::workloads::kernels::{ConcurrentQueue, ProducerConsumer, SharedCounters};

const CORES: usize = 8;
const OPS: u64 = 400;

fn run(kernel: &str, policy: AtomicPolicy, forwarding: bool) -> u64 {
    let sys = SystemConfig::small(CORES)
        .with_policy(policy)
        .with_forward_to_atomics(forwarding);
    let streams: Vec<Box<dyn InstrStream>> = (0..CORES)
        .map(|t| match kernel {
            "producer-consumer" => {
                Box::new(ProducerConsumer::new(t, OPS, 48, 1)) as Box<dyn InstrStream>
            }
            "shared-counters" => Box::new(SharedCounters::new(t, OPS, 1, 24, 2)),
            "concurrent-queue" => Box::new(ConcurrentQueue::new(t, OPS, 32, 32, 3)),
            _ => unreachable!(),
        })
        .collect();
    Machine::new(&sys, streams)
        .run(200_000_000)
        .expect("kernel simulation finishes")
        .cycles
}

fn main() {
    println!("{CORES} cores, {OPS} synchronization ops per thread\n");
    println!(
        "{:18} {:>9} {:>9} {:>9}  winner",
        "kernel", "eager", "lazy", "RoW+Fwd"
    );
    for kernel in ["producer-consumer", "shared-counters", "concurrent-queue"] {
        let eager = run(kernel, AtomicPolicy::Eager, false);
        let lazy = run(kernel, AtomicPolicy::Lazy, false);
        let row = run(kernel, AtomicPolicy::Row(RowConfig::best()), true);
        let winner = if row <= eager.min(lazy) {
            "RoW"
        } else if eager < lazy {
            "eager"
        } else {
            "lazy"
        };
        println!("{kernel:18} {eager:>9} {lazy:>9} {row:>9}  {winner}");
    }
    println!("\ncontended kernels favour lazy; the store→CAS locality of the");
    println!("concurrent queue favours eager — RoW picks per PC.");
}
