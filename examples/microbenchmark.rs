//! The Section II-A microbenchmark (Fig. 2), reproduced in simulation.
//!
//! Runs FAA/CAS/Swap in the four variants (± `lock` prefix, ± explicit
//! `mfence`s) on two core models: `Kentsfield-like` (atomics carry implicit
//! fences, as 2007-era x86) and `Coffee-Lake-like` (unfenced atomics, as
//! current x86). Prints cycles per iteration — compare the shapes with the
//! paper's Fig. 2.
//!
//! ```text
//! cargo run --release --example microbenchmark [iterations]
//! ```

use norush::common::config::FenceModel;
use norush::sim::run_microbench;
use norush::workloads::{MicroRmw, MicroVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1_000);

    for (label, model) in [
        ("Coffee-Lake-like (unfenced atomics)", FenceModel::Unfenced),
        ("Kentsfield-like (fenced atomics)", FenceModel::Fenced),
    ] {
        println!("== {label} — cycles/iteration, {iterations} iterations ==");
        println!(
            "{:6} {:>9} {:>14} {:>9} {:>13}",
            "rmw", "plain", "plain+mfence", "lock", "lock+mfence"
        );
        for rmw in MicroRmw::ALL {
            print!("{:6}", rmw.name());
            for variant in MicroVariant::ALL {
                let cpi = run_microbench(rmw, variant, model, iterations)?;
                let w = match variant.name() {
                    "plain" => 9,
                    "plain+mfence" => 14,
                    "lock" => 9,
                    _ => 13,
                };
                print!(" {cpi:>w$.1}", w = w);
            }
            println!();
        }
        println!();
    }
    println!("expected shapes (paper Fig. 2):");
    println!(" * unfenced model: lock ≈ plain; explicit mfence ≈ 4x slower");
    println!(" * fenced model:   lock ≈ 2x plain; extra mfence adds nothing");
    println!(" * Swap: x86 xchg is always locked, so plain == lock");
    Ok(())
}
