//! Quickstart: simulate one benchmark under the three atomic-execution
//! disciplines and print the paper's headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [cores]
//! ```

use norush::common::config::AtomicPolicy;
use norush::sim::{run_benchmark, run_row_fwd, ExperimentConfig, RowVariant};
use norush::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().unwrap_or_else(|| "pc".to_string());
    let cores: usize = args.next().map(|c| c.parse()).transpose()?.unwrap_or(8);

    let bench = *Benchmark::all()
        .iter()
        .find(|b| b.name() == bench_name)
        .ok_or_else(|| {
            format!(
                "unknown benchmark {bench_name}; try one of {:?}",
                Benchmark::all()
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
            )
        })?;

    let mut exp = ExperimentConfig::quick();
    exp.cores = cores;

    println!(
        "simulating `{bench}` on {cores} cores ({} instructions/thread)…\n",
        exp.instructions
    );

    let eager = run_benchmark(bench, AtomicPolicy::Eager, false, &exp)?;
    let lazy = run_benchmark(bench, AtomicPolicy::Lazy, false, &exp)?;
    let row = run_row_fwd(bench, RowVariant::RwDirUd, &exp)?;

    println!("policy              cycles   vs eager   IPC");
    for (name, r) in [
        ("eager", &eager),
        ("lazy", &lazy),
        ("RoW (RW+Dir_U/D+Fwd)", &row),
    ] {
        println!(
            "{name:20} {:>8}   {:>7.3}   {:>5.2}",
            r.cycles,
            r.cycles as f64 / eager.cycles as f64,
            r.ipc()
        );
    }
    println!(
        "\natomics: {}  detected contended: {:.0}%  (RoW ran {} eager / {} lazy)",
        row.total.atomics,
        100.0 * row.total.contended_fraction(),
        row.total.atomics_eager,
        row.total.atomics_lazy,
    );
    if let Some(acc) = row.accuracy {
        println!(
            "contention-prediction accuracy: {:.0}%",
            100.0 * acc.accuracy()
        );
    }
    Ok(())
}
