//! `norush` command-line interface.
//!
//! ```text
//! norush list
//! norush table1
//! norush run <benchmark> [--cores N] [--instr N] [--seed S] [--policy P]
//!            [--check [K]] [--watchdog N] [--rewind K] [--chaos SEED]
//!            [--chaos-latency N] [--chaos-drop P] [--chaos-dup P]
//!            [--chaos-corrupt P] [--oracle] [--chaos-shrink]
//!            [--checkpoint-every K] [--ckpt-dir D] [--resume]
//! norush compare <benchmark> [--cores N] [--instr N] [--seed S] [--jobs N]
//! norush microbench [--iters N] [--fenced]
//! norush record <benchmark> <file> [--instr N] [--tid T] [--threads N]
//! norush replay <file> [--policy P]
//! ```
//!
//! Policies: `eager` (default), `lazy`, `row`, `row-fwd`, `far`.

use norush::common::config::{AtomicPlacement, AtomicPolicy, FaultConfig, FenceModel, RowConfig};
use norush::cpu::instr::InstrStream;
use norush::sim::{
    run_microbench, ExperimentConfig, Machine, RunResult, Sweep, SweepOptions, Variant,
};
use norush::workloads::{Benchmark, MicroRmw, MicroVariant, ProfileStream, TraceFileStream};
use norush::SystemConfig;

type CliResult = Result<(), Box<dyn std::error::Error>>;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(raw: Vec<String>) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = raw.into_iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().expect("peeked"));
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(a);
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

impl Args {
    fn num(&self, name: &str, default: u64) -> Result<u64, Box<dyn std::error::Error>> {
        match self.flags.get(name) {
            Some(v) => Ok(v.parse()?),
            None => Ok(default),
        }
    }

    /// Parses `--{name}` as a fault probability in `[0, 0.05]` and converts
    /// it to parts-per-million; absent means 0 (off).
    fn prob_ppm(&self, name: &str) -> Result<u32, Box<dyn std::error::Error>> {
        let Some(v) = self.flags.get(name) else {
            return Ok(0);
        };
        let p: f64 = v
            .parse()
            .map_err(|e| format!("--{name}: `{v}` is not a number ({e})"))?;
        if !(0.0..=0.05).contains(&p) {
            return Err(format!(
                "--{name}: probability {v} out of range [0, 0.05] \
                 (rates above 5% defeat bounded retry)"
            )
            .into());
        }
        Ok((p * 1e6).round() as u32)
    }
}

fn bench_by_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown benchmark `{name}`; known: {}",
                Benchmark::all()
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn system_for(policy: &str, exp: &ExperimentConfig) -> Result<SystemConfig, String> {
    let sys = exp.system();
    Ok(match policy {
        "eager" => sys.with_policy(AtomicPolicy::Eager),
        "lazy" => sys.with_policy(AtomicPolicy::Lazy),
        "row" => sys.with_policy(AtomicPolicy::Row(
            RowConfig::best().with_locality_override(false),
        )),
        "row-fwd" => sys
            .with_policy(AtomicPolicy::Row(RowConfig::best()))
            .with_forward_to_atomics(true),
        "far" => sys.with_placement(AtomicPlacement::Far),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn try_run_with(
    sys: &SystemConfig,
    bench: Benchmark,
    exp: &ExperimentConfig,
) -> Result<RunResult, norush::SimError> {
    let profile = bench.profile().with_instructions(exp.instructions);
    let streams: Vec<Box<dyn InstrStream>> = (0..exp.cores)
        .map(|t| Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed)) as _)
        .collect();
    Machine::new(sys, streams).run(exp.cycle_limit)
}

/// A failing chaos run with `--chaos-shrink`: minimize the fault config
/// while the failure persists, print the minimal repro, and save it to
/// `chaos_repro.txt` (the artifact CI uploads).
fn shrink_and_report(
    sys: &SystemConfig,
    bench: Benchmark,
    exp: &ExperimentConfig,
    initial: FaultConfig,
) {
    eprintln!("shrinking the failing chaos config (one run per probe)...");
    let min = norush::sim::shrink_chaos(initial, |cand| {
        let mut probe = *exp;
        probe.check.chaos = Some(*cand);
        let mut s = *sys;
        s.check = probe.check;
        try_run_with(&s, bench, &probe).is_err()
    });
    let repro = format!(
        "norush run {} --cores {} --instr {} --seed {} --chaos {} \
         --chaos-latency {} --chaos-drop {} --chaos-dup {} --chaos-corrupt {}",
        bench.name(),
        exp.cores,
        exp.instructions,
        exp.seed,
        min.seed,
        min.max_extra_latency,
        min.drop_ppm as f64 / 1e6,
        min.dup_ppm as f64 / 1e6,
        min.corrupt_ppm as f64 / 1e6,
    );
    eprintln!(
        "minimal failing chaos config: latency {} drop {}ppm dup {}ppm corrupt {}ppm",
        min.max_extra_latency, min.drop_ppm, min.dup_ppm, min.corrupt_ppm
    );
    eprintln!("repro: {repro}");
    if let Err(e) = std::fs::write("chaos_repro.txt", format!("{repro}\n")) {
        eprintln!("cannot write chaos_repro.txt: {e}");
    } else {
        eprintln!("wrote chaos_repro.txt");
    }
}

fn summarize(name: &str, s: &norush::common::stats::JobStats, baseline: Option<u64>) {
    let norm = baseline
        .map(|b| format!("{:>8.3}", s.cycles as f64 / b as f64))
        .unwrap_or_else(|| "       -".into());
    println!(
        "{name:10} {:>10} {norm} {:>6.2} {:>8} {:>7.0}%",
        s.cycles,
        s.ipc(),
        s.atomics,
        100.0 * s.contended_fraction(),
    );
}

fn exp_from(args: &Args) -> Result<ExperimentConfig, Box<dyn std::error::Error>> {
    let mut exp = ExperimentConfig::quick();
    exp.cores = args.num("cores", 8)? as usize;
    exp.instructions = args.num("instr", 6_000)?;
    exp.seed = args.num("seed", 42)?;
    exp.cycle_limit = args.num("cycles", exp.cycle_limit)?;
    exp.paper_caches = exp.cores > 8;
    // Robustness layer: `--check` (or `--check K`) runs the coherence
    // invariant sweep every K cycles plus the deadlock watchdog; `--watchdog N`
    // sets the watchdog window (and enables the watchdog on its own);
    // `--rewind K` keeps an in-memory checkpoint every K cycles and replays
    // from it on a violation; `--chaos S` turns on delivery perturbation.
    let watchdog = args.num("watchdog", 5_000_000)?.max(1);
    if args.switches.contains("check") {
        exp.check.invariant_every = Some(2_048);
        exp.check.watchdog_window = Some(watchdog);
    } else if args.flags.contains_key("check") {
        exp.check.invariant_every = Some(args.num("check", 2_048)?.max(1));
        exp.check.watchdog_window = Some(watchdog);
    } else if args.flags.contains_key("watchdog") {
        exp.check.watchdog_window = Some(watchdog);
    }
    if args.flags.contains_key("rewind") {
        exp.check.rewind_every = Some(args.num("rewind", 65_536)?.max(1));
    }
    if args.switches.contains("chaos") {
        exp.check.chaos = Some(FaultConfig::with_seed(1));
    } else if args.flags.contains_key("chaos") {
        exp.check.chaos = Some(FaultConfig::with_seed(args.num("chaos", 1)?));
    }
    // Lossy chaos: `--chaos-drop/-dup/-corrupt P` inject per-message faults
    // at probability P (≤ 0.05), `--chaos-latency N` caps the delivery
    // jitter. Any of them implies `--chaos` (seed 1 unless given).
    let latency = args
        .flags
        .contains_key("chaos-latency")
        .then(|| args.num("chaos-latency", 0))
        .transpose()?;
    let drop_ppm = args.prob_ppm("chaos-drop")?;
    let dup_ppm = args.prob_ppm("chaos-dup")?;
    let corrupt_ppm = args.prob_ppm("chaos-corrupt")?;
    if latency.is_some() || drop_ppm > 0 || dup_ppm > 0 || corrupt_ppm > 0 {
        let f = exp
            .check
            .chaos
            .get_or_insert(FaultConfig::with_seed(args.num("chaos", 1)?));
        if let Some(l) = latency {
            f.max_extra_latency = l;
        }
        f.drop_ppm = drop_ppm;
        f.dup_ppm = dup_ppm;
        f.corrupt_ppm = corrupt_ppm;
    }
    // `--oracle`: journal every architectural write and differentially
    // check the finished run against a sequential golden model.
    if args.switches.contains("oracle") {
        exp.check.oracle = true;
    }
    Ok(exp)
}

/// Like [`run_with`], but crash-resilient: writes a checkpoint to `path`
/// every `every` cycles, and (with `resume`) continues from an existing one.
fn run_with_checkpointed(
    sys: &SystemConfig,
    bench: Benchmark,
    exp: &ExperimentConfig,
    every: u64,
    path: &std::path::Path,
    resume: bool,
) -> RunResult {
    let profile = bench.profile().with_instructions(exp.instructions);
    let streams: Vec<Box<dyn InstrStream>> = (0..exp.cores)
        .map(|t| Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed)) as _)
        .collect();
    let mut m = Machine::new(sys, streams);
    if resume && path.exists() {
        let restored = norush::sim::checkpoint::read_checkpoint(path)
            .map_err(norush::SimError::Checkpoint)
            .and_then(|bytes| m.restore(&bytes));
        match restored {
            Ok(()) => eprintln!("resumed from {} at cycle {}", path.display(), m.now().raw()),
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    let r = m
        .run_checkpointed(exp.cycle_limit, every, path)
        .unwrap_or_else(|e| {
            eprintln!("simulation failed:\n{e}");
            std::process::exit(1);
        });
    // The run completed: the checkpoint is spent, so a later `--resume`
    // starts fresh instead of replaying a finished machine.
    std::fs::remove_file(path).ok();
    r
}

fn cmd_run(args: &Args) -> CliResult {
    let bench = bench_by_name(args.positional.first().ok_or("usage: run <benchmark>")?)?;
    let exp = exp_from(args)?;
    let policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("eager");
    let sys = system_for(policy, &exp)?;
    let every = args.num("checkpoint-every", 0)?;
    let r = if every > 0 {
        let dir = args
            .flags
            .get("ckpt-dir")
            .cloned()
            .unwrap_or_else(|| ".".into());
        std::fs::create_dir_all(&dir)?;
        let path =
            std::path::Path::new(&dir).join(format!("norush_{}_{policy}.ckpt", bench.name()));
        run_with_checkpointed(
            &sys,
            bench,
            &exp,
            every,
            &path,
            args.switches.contains("resume"),
        )
    } else {
        match try_run_with(&sys, bench, &exp) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simulation failed:\n{e}");
                if args.switches.contains("chaos-shrink") {
                    if let Some(initial) = exp.check.chaos {
                        shrink_and_report(&sys, bench, &exp, initial);
                    } else {
                        eprintln!("--chaos-shrink: no chaos config to shrink");
                    }
                }
                std::process::exit(1);
            }
        }
    };
    println!("{bench} on {} cores, policy {policy}:", exp.cores);
    if let Some(f) = exp.check.chaos {
        println!(
            "  chaos             seed {} latency {} drop {}ppm dup {}ppm corrupt {}ppm{}",
            f.seed,
            f.max_extra_latency,
            f.drop_ppm,
            f.dup_ppm,
            f.corrupt_ppm,
            if exp.check.oracle { ", oracle on" } else { "" }
        );
    } else if exp.check.oracle {
        println!("  oracle            on");
    }
    println!("  cycles            {}", r.cycles);
    println!("  IPC               {:.2}", r.ipc());
    println!("  atomics           {}", r.total.atomics);
    println!(
        "  contended         {:.0}%",
        100.0 * r.total.contended_fraction()
    );
    println!("  miss latency      {:.0} cycles", r.miss_latency.mean());
    if let Some(acc) = r.accuracy {
        println!("  RoW accuracy      {:.0}%", 100.0 * acc.accuracy());
    }
    if let Some(t) = r.transport {
        println!(
            "  transport         sent {} delivered {} acks {}",
            t.sent, t.delivered, t.acks_sent
        );
        println!(
            "  injected faults   drops {} dups {} corrupts {}",
            t.drops_injected, t.dups_injected, t.corrupts_injected
        );
        println!(
            "  recovered         retries {} nack-rtx {} dup-dropped {} corrupt-dropped {} giveups {}",
            t.retries, t.nack_retransmits, t.dup_dropped, t.corrupt_dropped, t.giveups
        );
    }
    Ok(())
}

/// Parses `--jobs N` (worker threads for `compare`); absent means all host
/// cores. Mirrors the `--chaos-*` range-validation style.
fn jobs_from(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    let Some(v) = args.flags.get("jobs") else {
        return Ok(norush::sim::available_workers());
    };
    let n: usize = v
        .parse()
        .map_err(|e| format!("--jobs: `{v}` is not a worker count ({e})"))?;
    if !(1..=4096).contains(&n) {
        return Err(
            format!("--jobs: {n} out of range [1, 4096] (need at least one worker)").into(),
        );
    }
    Ok(n)
}

fn cmd_compare(args: &Args) -> CliResult {
    let bench = bench_by_name(
        args.positional
            .first()
            .ok_or("usage: compare <benchmark>")?,
    )?;
    let exp = exp_from(args)?;
    let jobs = jobs_from(args)?;
    println!(
        "{bench} on {} cores ({} instructions/thread):\n",
        exp.cores, exp.instructions
    );
    let variants = [
        Variant::eager(),
        Variant::lazy(),
        Variant::custom(
            "row",
            AtomicPolicy::Row(RowConfig::best().with_locality_override(false)),
        ),
        Variant::custom("row-fwd", AtomicPolicy::Row(RowConfig::best())).with_forwarding(),
        Variant::far(),
    ];
    let sweep = Sweep::grid("compare", &exp, &[bench], &variants, &[]);
    let r = sweep.run(&SweepOptions {
        workers: jobs,
        ..SweepOptions::default()
    })?;
    println!(
        "{:10} {:>10} {:>8} {:>6} {:>8} {:>8}",
        "policy", "cycles", "vs eager", "IPC", "atomics", "cont"
    );
    let mut baseline = None;
    for v in &variants {
        let s = r.stat(&format!("{}/{}", bench.name(), v.name));
        summarize(&v.name, s, baseline);
        baseline.get_or_insert(s.cycles);
    }
    Ok(())
}

fn cmd_list() -> CliResult {
    println!(
        "{:15} {:>12} {:>10} {:>9} {:>9}",
        "benchmark", "atomics/10k", "contended", "locality", "hot-lines"
    );
    for b in Benchmark::all() {
        let p = b.profile();
        println!(
            "{:15} {:>12.1} {:>9.0}% {:>8.0}% {:>9}",
            b.name(),
            p.atomics_per_10k,
            100.0 * p.contended_fraction,
            100.0 * p.locality_fraction,
            p.hot_lines
        );
    }
    Ok(())
}

fn cmd_microbench(args: &Args) -> CliResult {
    let iters = args.num("iters", 500)?;
    let model = if args.switches.contains("fenced") {
        FenceModel::Fenced
    } else {
        FenceModel::Unfenced
    };
    println!(
        "{:6} {:>9} {:>14} {:>9} {:>13}",
        "rmw", "plain", "plain+mfence", "lock", "lock+mfence"
    );
    for rmw in MicroRmw::ALL {
        print!("{:6}", rmw.name());
        for variant in MicroVariant::ALL {
            let cpi = run_microbench(rmw, variant, model, iters)?;
            let w = [9, 14, 9, 13][MicroVariant::ALL
                .iter()
                .position(|v| *v == variant)
                .expect("member")];
            print!(" {cpi:>w$.1}", w = w);
        }
        println!();
    }
    Ok(())
}

fn cmd_record(args: &Args) -> CliResult {
    let bench = bench_by_name(
        args.positional
            .first()
            .ok_or("usage: record <benchmark> <file>")?,
    )?;
    let path = args
        .positional
        .get(1)
        .ok_or("usage: record <benchmark> <file>")?;
    let instr = args.num("instr", 10_000)?;
    let tid = args.num("tid", 0)? as usize;
    let threads = args.num("threads", 32)? as usize;
    let seed = args.num("seed", 42)?;
    let profile = bench.profile().with_instructions(instr);
    let n =
        norush::workloads::record_to_file(path, ProfileStream::new(profile, tid, threads, seed))?;
    println!("recorded {n} instructions of {bench} (thread {tid}/{threads}) to {path}");
    Ok(())
}

fn cmd_replay(args: &Args) -> CliResult {
    let path = args.positional.first().ok_or("usage: replay <file>")?;
    let policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("eager");
    let exp = ExperimentConfig {
        cores: 1,
        instructions: 0,
        seed: 0,
        cycle_limit: 2_000_000_000,
        paper_caches: true,
        check: norush::common::config::CheckConfig::default(),
    };
    let mut sys = system_for(policy, &exp)?;
    sys.cores = 1;
    let stream: Box<dyn InstrStream> = Box::new(TraceFileStream::open(path)?);
    let r = Machine::new(&sys, vec![stream])
        .run(exp.cycle_limit)
        .expect("replay drains");
    println!(
        "replayed {path} under {policy}: {} cycles, IPC {:.2}, {} atomics",
        r.cycles,
        r.ipc(),
        r.total.atomics
    );
    Ok(())
}

fn cmd_table1() -> CliResult {
    let cfg = SystemConfig::alder_lake_32c();
    println!(
        "cores {}, widths {}/{}/{}, ROB {}, LQ {}, SB {}, AQ {}",
        cfg.cores,
        cfg.core.fetch_width,
        cfg.core.issue_width,
        cfg.core.commit_width,
        cfg.core.rob_entries,
        cfg.core.lq_entries,
        cfg.core.sb_entries,
        cfg.core.aq_entries
    );
    println!(
        "L1D {}KB/{}w/{}cyc, L2 {}KB/{}w/{}cyc, L3 {}KB/{}w/{}cyc per bank, mem {}cyc",
        cfg.mem.l1d.size_bytes / 1024,
        cfg.mem.l1d.ways,
        cfg.mem.l1d.hit_latency,
        cfg.mem.l2.size_bytes / 1024,
        cfg.mem.l2.ways,
        cfg.mem.l2.hit_latency,
        cfg.mem.l3_bank.size_bytes / 1024,
        cfg.mem.l3_bank.ways,
        cfg.mem.l3_bank.hit_latency,
        cfg.mem.mem_latency
    );
    Ok(())
}

fn usage() -> CliResult {
    println!("norush — Rush-or-Wait atomic-scheduling simulator");
    println!();
    println!("commands:");
    println!("  list                               calibrated benchmark models");
    println!("  table1                             Table I system parameters");
    println!("  run <bench> [--policy P] [...]     one simulation with stats");
    println!("  compare <bench> [--jobs N] [...]   eager/lazy/row/row-fwd/far table");
    println!("  microbench [--iters N] [--fenced]  Fig. 2 cycles/iteration");
    println!("  record <bench> <file> [...]        capture a trace file");
    println!("  replay <file> [--policy P]         replay a trace file");
    println!();
    println!("common flags: --cores N --instr N --seed S --cycles LIMIT");
    println!("robustness:   --check [K]   invariant sweep every K cycles + deadlock watchdog");
    println!("              --watchdog N  watchdog window in cycles (default 5000000)");
    println!("              --rewind K    in-memory checkpoint every K cycles; on a");
    println!("                            violation, replay from it and report the first");
    println!("                            offending cycle");
    println!("              --chaos SEED  seeded message-delivery perturbation");
    println!("              --chaos-latency N  cap on injected delivery jitter (cycles)");
    println!("              --chaos-drop P     drop each message with probability P (<= 0.05)");
    println!("              --chaos-dup P      duplicate each message with probability P");
    println!("              --chaos-corrupt P  corrupt payloads with probability P;");
    println!("                                 lossy faults engage the recoverable transport");
    println!("                                 (sequencing, dedup, checksums, retransmission)");
    println!("              --oracle      differentially check the finished run against a");
    println!("                            sequential golden model (journal replay)");
    println!("              --chaos-shrink     on failure, minimize the chaos config while");
    println!("                                 the failure persists; writes chaos_repro.txt");
    println!("checkpointing (run): --checkpoint-every K --ckpt-dir D --resume");
    println!("policies: eager lazy row row-fwd far");
    Ok(())
}

fn main() -> CliResult {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return usage();
    }
    let cmd = raw.remove(0);
    let args = parse_args(raw);
    match cmd.as_str() {
        "list" => cmd_list(),
        "table1" => cmd_table1(),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "microbench" => cmd_microbench(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command `{other}`\n");
            usage()
        }
    }
}
