//! `norush` command-line interface.
//!
//! ```text
//! norush list
//! norush table1
//! norush run <benchmark> [--cores N] [--instr N] [--seed S] [--policy P]
//!            [--check [K]] [--watchdog N] [--rewind K] [--chaos SEED]
//!            [--chaos-latency N] [--chaos-drop P] [--chaos-dup P]
//!            [--chaos-corrupt P] [--oracle] [--chaos-shrink]
//!            [--checkpoint-every K] [--ckpt-dir D] [--resume]
//! norush compare <benchmark> [--cores N] [--instr N] [--seed S] [--jobs N]
//! norush soak [--phases N] [--policies P,Q] [--kernel K] [--seed S] [...]
//! norush fuzz [--policy P] [--kernel K] [--budget N] [--seed S] [--jobs N]
//!             [--inject-early-unblock] [--resume] [--replay HEX] [...]
//! norush litmus [--test T,U] [--policies P,Q] [--samples N] [--seed S] [--jobs N]
//! norush explore [--test T,U] [--policy P] [--depth N] [--delays N] [--jobs N]
//!                [--require-witness] [--inject-early-unblock] [--replay HEX]
//! norush microbench [--iters N] [--fenced]
//! norush record <benchmark> <file> [--instr N] [--tid T] [--threads N]
//! norush replay <file> [--policy P]
//! ```
//!
//! Policies: `eager` (default), `lazy`, `row`, `row-fwd`, `far`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use norush::common::config::{AtomicPlacement, AtomicPolicy, FaultConfig, FenceModel, RowConfig};
use norush::cpu::instr::InstrStream;
use norush::sim::{
    run_microbench, ExperimentConfig, Machine, RunResult, SimError, Sweep, SweepOptions, Variant,
};
use norush::workloads::litmus::{LitmusTest, OutcomeClass};
use norush::workloads::{
    Benchmark, LockServiceConfig, LockServiceStream, MicroRmw, MicroVariant, ProfileStream,
    ServiceKernel, TraceFileStream,
};
use norush::SystemConfig;

/// Schema tag of the machine-readable soak report.
const SOAK_SCHEMA: &str = "norush-soak-v1";

type CliResult = Result<(), Box<dyn std::error::Error>>;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(raw: Vec<String>) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = raw.into_iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().expect("peeked"));
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(a);
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

impl Args {
    fn num(&self, name: &str, default: u64) -> Result<u64, Box<dyn std::error::Error>> {
        match self.flags.get(name) {
            Some(v) => Ok(v.parse()?),
            None => Ok(default),
        }
    }

    /// Parses `--{name}` as an integer in `[lo, hi]`; absent means `default`.
    /// The error explains the bound, mirroring the `--chaos-*` style.
    fn num_in(
        &self,
        name: &str,
        default: u64,
        lo: u64,
        hi: u64,
        why: &str,
    ) -> Result<u64, Box<dyn std::error::Error>> {
        let Some(v) = self.flags.get(name) else {
            return Ok(default);
        };
        let n: u64 = v
            .parse()
            .map_err(|e| format!("--{name}: `{v}` is not a number ({e})"))?;
        if !(lo..=hi).contains(&n) {
            return Err(format!("--{name}: {n} out of range [{lo}, {hi}] ({why})").into());
        }
        Ok(n)
    }

    /// Parses `--{name}` as a finite float in `[lo, hi]`; absent means
    /// `default`. Same structured errors as [`Args::num_in`].
    fn f64_in(
        &self,
        name: &str,
        default: f64,
        lo: f64,
        hi: f64,
        why: &str,
    ) -> Result<f64, Box<dyn std::error::Error>> {
        let Some(v) = self.flags.get(name) else {
            return Ok(default);
        };
        let x: f64 = v
            .parse()
            .map_err(|e| format!("--{name}: `{v}` is not a number ({e})"))?;
        if !x.is_finite() || !(lo..=hi).contains(&x) {
            return Err(format!("--{name}: {v} out of range [{lo}, {hi}] ({why})").into());
        }
        Ok(x)
    }

    /// Parses `--{name}` as a fault probability in `[0, 0.05]` and converts
    /// it to parts-per-million; absent means 0 (off).
    fn prob_ppm(&self, name: &str) -> Result<u32, Box<dyn std::error::Error>> {
        self.prob_ppm_or(name, 0)
    }

    /// Like [`Args::prob_ppm`], but an absent flag means `default_ppm`
    /// (soak arms baseline chaos unless explicitly zeroed).
    fn prob_ppm_or(&self, name: &str, default_ppm: u32) -> Result<u32, Box<dyn std::error::Error>> {
        let Some(v) = self.flags.get(name) else {
            return Ok(default_ppm);
        };
        let p: f64 = v
            .parse()
            .map_err(|e| format!("--{name}: `{v}` is not a number ({e})"))?;
        if !(0.0..=0.05).contains(&p) {
            return Err(format!(
                "--{name}: probability {v} out of range [0, 0.05] \
                 (rates above 5% defeat bounded retry)"
            )
            .into());
        }
        Ok((p * 1e6).round() as u32)
    }
}

fn bench_by_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown benchmark `{name}`; known: {}",
                Benchmark::all()
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn system_for(policy: &str, exp: &ExperimentConfig) -> Result<SystemConfig, String> {
    let sys = exp.system();
    Ok(match policy {
        "eager" => sys.with_policy(AtomicPolicy::Eager),
        "lazy" => sys.with_policy(AtomicPolicy::Lazy),
        "row" => sys.with_policy(AtomicPolicy::Row(
            RowConfig::best().with_locality_override(false),
        )),
        "row-fwd" => sys
            .with_policy(AtomicPolicy::Row(RowConfig::best()))
            .with_forward_to_atomics(true),
        "far" => sys.with_placement(AtomicPlacement::Far),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn try_run_with(
    sys: &SystemConfig,
    bench: Benchmark,
    exp: &ExperimentConfig,
) -> Result<RunResult, norush::SimError> {
    let profile = bench.profile().with_instructions(exp.instructions);
    let streams: Vec<Box<dyn InstrStream>> = (0..exp.cores)
        .map(|t| Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed)) as _)
        .collect();
    Machine::new(sys, streams).run(exp.cycle_limit)
}

/// A failing chaos run with `--chaos-shrink`: minimize the fault config
/// while `fails` keeps reproducing the failure, print the minimal repro
/// command (`repro_cmd` renders one for a candidate config), and save it to
/// `<repro_dir>/chaos_repro.txt` (the artifact CI uploads). Returns the
/// minimal config so callers can record it.
fn shrink_and_report(
    repro_dir: &Path,
    initial: FaultConfig,
    repro_cmd: &dyn Fn(&FaultConfig) -> String,
    fails: &mut dyn FnMut(&FaultConfig) -> bool,
) -> FaultConfig {
    eprintln!("shrinking the failing chaos config (one run per probe)...");
    let min = norush::sim::shrink_chaos(initial, fails);
    let repro = repro_cmd(&min);
    eprintln!(
        "minimal failing chaos config: latency {} drop {}ppm dup {}ppm corrupt {}ppm",
        min.max_extra_latency, min.drop_ppm, min.dup_ppm, min.corrupt_ppm
    );
    eprintln!("repro: {repro}");
    let path = repro_dir.join("chaos_repro.txt");
    if let Err(e) = std::fs::write(&path, format!("{repro}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
    min
}

/// Parses `--repro-dir` (where shrunk repros and triage bundles land),
/// creating the directory and rotating any leftover bundle aside (the
/// shared [`norush::sim::triage`] plumbing). `run` defaults to the working
/// directory; `soak` to `soak_repro`; `fuzz` to `fuzz_repro`; `litmus` and
/// `explore` to `explore_repro`.
fn repro_dir_from(args: &Args, default: &str) -> Result<PathBuf, Box<dyn std::error::Error>> {
    let dir = PathBuf::from(
        args.flags
            .get("repro-dir")
            .map(String::as_str)
            .unwrap_or(default),
    );
    norush::sim::triage::prepare_repro_dir(&dir)
        .map_err(|e| format!("--repro-dir {}: {e}", dir.display()))?;
    Ok(dir)
}

fn summarize(name: &str, s: &norush::common::stats::JobStats, baseline: Option<u64>) {
    let norm = baseline
        .map(|b| format!("{:>8.3}", s.cycles as f64 / b as f64))
        .unwrap_or_else(|| "       -".into());
    println!(
        "{name:10} {:>10} {norm} {:>6.2} {:>8} {:>7.0}%",
        s.cycles,
        s.ipc(),
        s.atomics,
        100.0 * s.contended_fraction(),
    );
}

fn exp_from(args: &Args) -> Result<ExperimentConfig, Box<dyn std::error::Error>> {
    let mut exp = ExperimentConfig::quick();
    exp.cores = args.num("cores", 8)? as usize;
    exp.instructions = args.num("instr", 6_000)?;
    exp.seed = args.num("seed", 42)?;
    exp.cycle_limit = args.num("cycles", exp.cycle_limit)?;
    exp.paper_caches = exp.cores > 8;
    // Robustness layer: `--check` (or `--check K`) runs the coherence
    // invariant sweep every K cycles plus the deadlock watchdog; `--watchdog N`
    // sets the watchdog window (and enables the watchdog on its own);
    // `--rewind K` keeps an in-memory checkpoint every K cycles and replays
    // from it on a violation; `--chaos S` turns on delivery perturbation.
    let watchdog = args.num("watchdog", 5_000_000)?.max(1);
    if args.switches.contains("check") {
        exp.check.invariant_every = Some(2_048);
        exp.check.watchdog_window = Some(watchdog);
    } else if args.flags.contains_key("check") {
        exp.check.invariant_every = Some(args.num("check", 2_048)?.max(1));
        exp.check.watchdog_window = Some(watchdog);
    } else if args.flags.contains_key("watchdog") {
        exp.check.watchdog_window = Some(watchdog);
    }
    if args.flags.contains_key("rewind") {
        exp.check.rewind_every = Some(args.num("rewind", 65_536)?.max(1));
    }
    if args.switches.contains("chaos") {
        exp.check.chaos = Some(FaultConfig::with_seed(1));
    } else if args.flags.contains_key("chaos") {
        exp.check.chaos = Some(FaultConfig::with_seed(args.num("chaos", 1)?));
    }
    // Lossy chaos: `--chaos-drop/-dup/-corrupt P` inject per-message faults
    // at probability P (≤ 0.05), `--chaos-latency N` caps the delivery
    // jitter. Any of them implies `--chaos` (seed 1 unless given).
    let latency = args
        .flags
        .contains_key("chaos-latency")
        .then(|| args.num("chaos-latency", 0))
        .transpose()?;
    let drop_ppm = args.prob_ppm("chaos-drop")?;
    let dup_ppm = args.prob_ppm("chaos-dup")?;
    let corrupt_ppm = args.prob_ppm("chaos-corrupt")?;
    if latency.is_some() || drop_ppm > 0 || dup_ppm > 0 || corrupt_ppm > 0 {
        let f = exp
            .check
            .chaos
            .get_or_insert(FaultConfig::with_seed(args.num("chaos", 1)?));
        if let Some(l) = latency {
            f.max_extra_latency = l;
        }
        f.drop_ppm = drop_ppm;
        f.dup_ppm = dup_ppm;
        f.corrupt_ppm = corrupt_ppm;
    }
    // `--oracle`: journal every architectural write and differentially
    // check the finished run against a sequential golden model.
    if args.switches.contains("oracle") {
        exp.check.oracle = true;
    }
    Ok(exp)
}

/// Like [`run_with`], but crash-resilient: writes a checkpoint to `path`
/// every `every` cycles, and (with `resume`) continues from an existing one.
fn run_with_checkpointed(
    sys: &SystemConfig,
    bench: Benchmark,
    exp: &ExperimentConfig,
    every: u64,
    path: &std::path::Path,
    resume: bool,
) -> RunResult {
    let profile = bench.profile().with_instructions(exp.instructions);
    let streams: Vec<Box<dyn InstrStream>> = (0..exp.cores)
        .map(|t| Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed)) as _)
        .collect();
    let mut m = Machine::new(sys, streams);
    if resume && path.exists() {
        let restored = norush::sim::checkpoint::read_checkpoint(path)
            .map_err(norush::SimError::Checkpoint)
            .and_then(|bytes| m.restore(&bytes));
        match restored {
            Ok(()) => eprintln!("resumed from {} at cycle {}", path.display(), m.now().raw()),
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    let r = m
        .run_checkpointed(exp.cycle_limit, every, path)
        .unwrap_or_else(|e| {
            eprintln!("simulation failed:\n{e}");
            std::process::exit(1);
        });
    // The run completed: the checkpoint is spent, so a later `--resume`
    // starts fresh instead of replaying a finished machine.
    std::fs::remove_file(path).ok();
    r
}

fn cmd_run(args: &Args) -> CliResult {
    let bench = bench_by_name(args.positional.first().ok_or("usage: run <benchmark>")?)?;
    let exp = exp_from(args)?;
    let policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("eager");
    let sys = system_for(policy, &exp)?;
    let every = args.num("checkpoint-every", 0)?;
    let r = if every > 0 {
        let dir = args
            .flags
            .get("ckpt-dir")
            .cloned()
            .unwrap_or_else(|| ".".into());
        std::fs::create_dir_all(&dir)?;
        let path =
            std::path::Path::new(&dir).join(format!("norush_{}_{policy}.ckpt", bench.name()));
        run_with_checkpointed(
            &sys,
            bench,
            &exp,
            every,
            &path,
            args.switches.contains("resume"),
        )
    } else {
        match try_run_with(&sys, bench, &exp) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simulation failed:\n{e}");
                if args.switches.contains("chaos-shrink") {
                    if let Some(initial) = exp.check.chaos {
                        let dir = repro_dir_from(args, ".")?;
                        shrink_and_report(
                            &dir,
                            initial,
                            &|min| {
                                format!(
                                    "norush run {} --cores {} --instr {} --seed {} --chaos {} \
                                     --chaos-latency {} --chaos-drop {} --chaos-dup {} \
                                     --chaos-corrupt {}",
                                    bench.name(),
                                    exp.cores,
                                    exp.instructions,
                                    exp.seed,
                                    min.seed,
                                    min.max_extra_latency,
                                    min.drop_ppm as f64 / 1e6,
                                    min.dup_ppm as f64 / 1e6,
                                    min.corrupt_ppm as f64 / 1e6,
                                )
                            },
                            &mut |cand| {
                                let mut probe = exp;
                                probe.check.chaos = Some(*cand);
                                let mut s = sys;
                                s.check = probe.check;
                                try_run_with(&s, bench, &probe).is_err()
                            },
                        );
                    } else {
                        eprintln!("--chaos-shrink: no chaos config to shrink");
                    }
                }
                std::process::exit(1);
            }
        }
    };
    println!("{bench} on {} cores, policy {policy}:", exp.cores);
    if let Some(f) = exp.check.chaos {
        println!(
            "  chaos             seed {} latency {} drop {}ppm dup {}ppm corrupt {}ppm{}",
            f.seed,
            f.max_extra_latency,
            f.drop_ppm,
            f.dup_ppm,
            f.corrupt_ppm,
            if exp.check.oracle { ", oracle on" } else { "" }
        );
    } else if exp.check.oracle {
        println!("  oracle            on");
    }
    println!("  cycles            {}", r.cycles);
    println!("  IPC               {:.2}", r.ipc());
    println!("  atomics           {}", r.total.atomics);
    println!(
        "  contended         {:.0}%",
        100.0 * r.total.contended_fraction()
    );
    println!("  miss latency      {:.0} cycles", r.miss_latency.mean());
    if let Some(acc) = r.accuracy {
        println!("  RoW accuracy      {:.0}%", 100.0 * acc.accuracy());
    }
    if let Some(t) = r.transport {
        println!(
            "  transport         sent {} delivered {} acks {}",
            t.sent, t.delivered, t.acks_sent
        );
        println!(
            "  injected faults   drops {} dups {} corrupts {}",
            t.drops_injected, t.dups_injected, t.corrupts_injected
        );
        println!(
            "  recovered         retries {} nack-rtx {} dup-dropped {} corrupt-dropped {} giveups {}",
            t.retries, t.nack_retransmits, t.dup_dropped, t.corrupt_dropped, t.giveups
        );
    }
    Ok(())
}

/// `norush profile`: one simulation with a wall-clock breakdown by hot-loop
/// component (memory tick, core stepping, invariant sweep) so hot-path work
/// is measured before and after, not guessed.
fn cmd_profile(args: &Args) -> CliResult {
    let bench = bench_by_name(
        args.positional
            .first()
            .ok_or("usage: profile <benchmark>")?,
    )?;
    let exp = exp_from(args)?;
    let policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("eager");
    let sys = system_for(policy, &exp)?;
    let profile = bench.profile().with_instructions(exp.instructions);
    let streams: Vec<Box<dyn InstrStream>> = (0..exp.cores)
        .map(|t| Box::new(ProfileStream::new(profile, t, exp.cores, exp.seed)) as _)
        .collect();
    let (r, p) = Machine::new(&sys, streams)
        .run_profiled(exp.cycle_limit)
        .unwrap_or_else(|e| {
            eprintln!("simulation failed:\n{e}");
            std::process::exit(1);
        });
    let pct = |s: f64| {
        if p.wall_s > 0.0 {
            100.0 * s / p.wall_s
        } else {
            0.0
        }
    };
    println!(
        "{bench} on {} cores, policy {policy}, {} instr/core, seed {}:",
        exp.cores, exp.instructions, exp.seed
    );
    println!("  cycles            {}", r.cycles);
    println!("  IPC               {:.2}", r.ipc());
    println!("  wall clock        {:.3} s", p.wall_s);
    println!("  cycles/sec        {:.0}", p.cycles_per_sec());
    println!(
        "  mem tick          {:.3} s ({:.1}%)  [{} events, {:.2}/cycle]",
        p.mem_tick_s,
        pct(p.mem_tick_s),
        p.events,
        if p.cycles > 0 {
            p.events as f64 / p.cycles as f64
        } else {
            0.0
        }
    );
    println!(
        "  core step         {:.3} s ({:.1}%)  [{} steps, {:.2}/cycle]",
        p.core_step_s,
        pct(p.core_step_s),
        p.core_steps,
        if p.cycles > 0 {
            p.core_steps as f64 / p.cycles as f64
        } else {
            0.0
        }
    );
    println!(
        "  invariant sweep   {:.3} s ({:.1}%)",
        p.check_s,
        pct(p.check_s)
    );
    println!(
        "  other             {:.3} s ({:.1}%)",
        p.other_s(),
        pct(p.other_s())
    );
    Ok(())
}

/// Everything one `norush soak` run needs, parsed and range-checked up
/// front so a bad flag fails before any phase starts.
struct SoakSpec {
    phases: usize,
    cores: usize,
    seed: u64,
    policies: Vec<String>,
    /// `None` rotates through [`ServiceKernel::ALL`] per phase.
    kernel: Option<ServiceKernel>,
    /// Workload shape shared by every phase (the kernel field is
    /// overwritten per phase).
    svc: LockServiceConfig,
    chaos_seed: u64,
    latency: u64,
    drop_ppm: u32,
    dup_ppm: u32,
    corrupt_ppm: u32,
    /// Per-phase multiplier on the lossy ppm rates (phase p runs at
    /// `base * escalation^p`, capped at the CLI's 50 000 ppm bound).
    escalation: f64,
    phase_cycles: u64,
    wall_secs: u64,
    ckpt_every: u64,
    watchdog: u64,
    repro_dir: PathBuf,
    out: PathBuf,
    /// Test-only atomicity bug: lose the Nth FAA and double-apply the next
    /// one on the same word (0 = off). Exercises the triage pipeline.
    inject: u64,
}

fn soak_spec(args: &Args) -> Result<SoakSpec, Box<dyn std::error::Error>> {
    let phases = args.num_in("phases", 3, 1, 64, "soak phases")? as usize;
    let cores = args.num_in("cores", 4, 1, 512, "simulated cores")? as usize;
    let policies: Vec<String> = args
        .flags
        .get("policies")
        .map(String::as_str)
        .unwrap_or("lazy,row")
        .split(',')
        .map(str::to_string)
        .collect();
    // Validate policy names up front with a throwaway config.
    let probe = ExperimentConfig::quick();
    for p in &policies {
        system_for(p, &probe).map_err(|e| format!("--policies: {e}"))?;
    }
    let kernel = match args.flags.get("kernel").map(String::as_str) {
        None | Some("rotate") => None,
        Some(v) => Some(ServiceKernel::parse(v).ok_or_else(|| {
            format!("--kernel: `{v}` is not one of counter, mpmc-queue, mw-register, rotate")
        })?),
    };
    let svc = LockServiceConfig {
        shards: args.num_in("shards", 4, 1, 1 << 16, "lock shards")?,
        keys: args.num_in("keys", 64, 1, 1 << 20, "service keys")?,
        zipf_theta: args.f64_in("zipf-theta", 0.99, 0.0, 4.0, "Zipf skew")?,
        read_fraction: args.f64_in("read-frac", 0.3, 0.0, 1.0, "read fraction")?,
        ops_per_thread: args.num_in("ops", 200, 1, 1_000_000, "ops per thread")?,
        mean_gap: args.f64_in("mean-gap", 24.0, 1.0, 100_000.0, "open-loop gap")?,
        burst_epoch_ops: args.num_in("burst-epoch", 32, 1, 1_000_000, "ops per epoch")?,
        burst_factor: args.f64_in("burst-factor", 4.0, 1.0, 1_000.0, "burst gap divisor")?,
        kernel: ServiceKernel::Counter,
    };
    svc.validate().map_err(|e| format!("soak workload: {e}"))?;
    Ok(SoakSpec {
        phases,
        cores,
        seed: args.num("seed", 42)?,
        policies,
        kernel,
        svc,
        chaos_seed: args.num("chaos", 1)?,
        latency: args.num_in("chaos-latency", 40, 0, 100_000, "delivery jitter cap")?,
        drop_ppm: args.prob_ppm_or("chaos-drop", 200)?,
        dup_ppm: args.prob_ppm_or("chaos-dup", 200)?,
        corrupt_ppm: args.prob_ppm_or("chaos-corrupt", 100)?,
        escalation: args.f64_in("chaos-escalation", 4.0, 1.0, 100.0, "per-phase multiplier")?,
        phase_cycles: args.num_in(
            "phase-cycles",
            2_000_000,
            1_000,
            1_000_000_000_000,
            "per-phase cycle budget",
        )?,
        wall_secs: args.num_in("wall-secs", 600, 1, 86_400, "whole-soak wall budget")?,
        ckpt_every: args.num_in(
            "checkpoint-every",
            250_000,
            1_000,
            1_000_000_000,
            "checkpoint interval",
        )?,
        watchdog: args.num_in("watchdog", 2_000_000, 1_000, u64::MAX, "watchdog window")?,
        repro_dir: repro_dir_from(args, "soak_repro")?,
        out: PathBuf::from(
            args.flags
                .get("out")
                .map(String::as_str)
                .unwrap_or("soak_report.json"),
        ),
        inject: args.num_in("inject-net-zero-faa", 0, 0, 1_000_000_000, "FAA countdown")?,
    })
}

impl SoakSpec {
    fn kernel_for(&self, phase: usize) -> ServiceKernel {
        self.kernel
            .unwrap_or(ServiceKernel::ALL[phase % ServiceKernel::ALL.len()])
    }

    /// Per-phase workload seed; phase 0 uses `--seed` verbatim, so a
    /// single-phase repro can name any phase's seed directly.
    fn seed_for(&self, phase: usize) -> u64 {
        self.seed.wrapping_add(phase as u64 * 0x9e37_79b9_7f4a_7c15)
    }

    /// The phase's escalated chaos schedule; `None` once every component is
    /// zeroed out (pure-functional soak, e.g. for bug-injection runs).
    fn chaos_for(&self, phase: usize) -> Option<FaultConfig> {
        let esc = |base: u32| -> u32 {
            let scaled = (base as f64 * self.escalation.powi(phase as i32)).round() as u64;
            scaled.min(50_000) as u32
        };
        let f = FaultConfig {
            seed: self.chaos_seed.wrapping_add(phase as u64),
            max_extra_latency: self.latency,
            drop_ppm: esc(self.drop_ppm),
            dup_ppm: esc(self.dup_ppm),
            corrupt_ppm: esc(self.corrupt_ppm),
        };
        (f.max_extra_latency > 0 || f.lossy()).then_some(f)
    }

    fn svc_for(&self, phase: usize) -> LockServiceConfig {
        LockServiceConfig {
            kernel: self.kernel_for(phase),
            ..self.svc
        }
    }

    fn exp_for(&self, phase: usize) -> ExperimentConfig {
        let mut exp = ExperimentConfig::quick();
        exp.cores = self.cores;
        exp.seed = self.seed_for(phase);
        exp.cycle_limit = self.phase_cycles;
        exp.check.invariant_every = Some(4_096);
        exp.check.watchdog_window = Some(self.watchdog);
        exp.check.oracle_online = true;
        exp.check.chaos = self.chaos_for(phase);
        exp
    }

    fn streams_for(&self, phase: usize) -> Vec<Box<dyn InstrStream>> {
        let svc = self.svc_for(phase);
        let seed = self.seed_for(phase);
        (0..self.cores)
            .map(|t| Box::new(LockServiceStream::new(svc, t, self.cores, seed)) as _)
            .collect()
    }

    /// A fresh machine for one phase x policy cell, online checker armed.
    fn machine_for(&self, phase: usize, policy: &str) -> Result<Machine, String> {
        let exp = self.exp_for(phase);
        let sys = system_for(policy, &exp)?;
        let mut m = Machine::new(&sys, self.streams_for(phase));
        if self.inject > 0 {
            m.memory_mut().inject_net_zero_faa_for_test(self.inject);
        }
        Ok(m)
    }

    /// A single-phase command replaying one phase x policy cell exactly:
    /// phase 0 with the failing phase's effective seeds, kernel, and chaos
    /// rates spelled out (`--chaos-escalation 1` keeps them unscaled).
    fn repro_cmd(&self, phase: usize, policy: &str, chaos: &FaultConfig) -> String {
        let mut cmd = format!(
            "norush soak --phases 1 --policies {policy} --kernel {} --cores {} --seed {} \
             --ops {} --shards {} --keys {} --zipf-theta {} --read-frac {} --mean-gap {} \
             --burst-epoch {} --burst-factor {} --phase-cycles {} --chaos {} \
             --chaos-latency {} --chaos-drop {} --chaos-dup {} --chaos-corrupt {} \
             --chaos-escalation 1",
            self.kernel_for(phase).name(),
            self.cores,
            self.seed_for(phase),
            self.svc.ops_per_thread,
            self.svc.shards,
            self.svc.keys,
            self.svc.zipf_theta,
            self.svc.read_fraction,
            self.svc.mean_gap,
            self.svc.burst_epoch_ops,
            self.svc.burst_factor,
            self.phase_cycles,
            chaos.seed,
            chaos.max_extra_latency,
            chaos.drop_ppm as f64 / 1e6,
            chaos.dup_ppm as f64 / 1e6,
            chaos.corrupt_ppm as f64 / 1e6,
        );
        if self.inject > 0 {
            cmd.push_str(&format!(" --inject-net-zero-faa {}", self.inject));
        }
        cmd
    }
}

/// How one soak phase x policy cell ended.
enum PhaseFailure {
    /// The machine failed (violation, stall, timeout against the phase's
    /// cycle budget, checkpoint error).
    Sim(SimError),
    /// The whole-soak wall budget ran out mid-phase.
    Wall { at_cycle: u64 },
}

/// Drives one cell to completion in checkpointed slices: every `every`
/// cycles the machine snapshot lands in `ckpt` (atomically), so a violation
/// leaves a recent restore point for the triage bundle, and the wall-clock
/// `deadline` is re-checked between slices.
fn run_soak_phase(
    m: &mut Machine,
    cycle_budget: u64,
    every: u64,
    ckpt: &Path,
    deadline: Instant,
) -> Result<RunResult, PhaseFailure> {
    let limit = m.now().raw().saturating_add(cycle_budget);
    loop {
        if Instant::now() >= deadline {
            return Err(PhaseFailure::Wall {
                at_cycle: m.now().raw(),
            });
        }
        let remaining = limit - m.now().raw();
        if remaining == 0 {
            // Budget exhausted: surface the standard timeout diagnostics.
            return match m.run(limit) {
                Ok(r) => Ok(r),
                Err(e) => Err(PhaseFailure::Sim(e)),
            };
        }
        match m.run_for(every.min(remaining)).map_err(PhaseFailure::Sim)? {
            Some(r) => return Ok(r),
            None => {
                let bytes = m.checkpoint().map_err(PhaseFailure::Sim)?;
                norush::sim::checkpoint::write_checkpoint(ckpt, &bytes)
                    .map_err(|e| PhaseFailure::Sim(SimError::Checkpoint(e)))?;
            }
        }
    }
}

/// Per-cell latency summary for the report (units: cycles).
struct LatSummary {
    count: u64,
    mean: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

/// One phase x policy cell of the soak report.
struct SoakOutcome {
    phase: usize,
    kernel: &'static str,
    policy: String,
    chaos: Option<FaultConfig>,
    /// `"ok"`, `"violation"`, or `"wall-budget"`.
    status: &'static str,
    error: Option<String>,
    cycles: u64,
    ipc: f64,
    atomics: u64,
    lat: Option<LatSummary>,
    /// Online-checker counters: (ops observed, RMWs, live words).
    checker: Option<(u64, u64, usize)>,
}

/// On a cell failure: write the triage bundle (failure description, repro
/// command, online-checker journal tail; the latest checkpoint is already in
/// the repro dir) and, when chaos was active, shrink it to a minimal repro.
fn soak_triage(
    spec: &SoakSpec,
    phase: usize,
    policy: &str,
    err: &SimError,
    m: &Machine,
    ckpt: &Path,
) {
    let chaos = spec.chaos_for(phase);
    let mut desc = format!(
        "soak failure\nphase: {phase}\npolicy: {policy}\nkernel: {}\nseed: {}\ncores: {}\n",
        spec.kernel_for(phase).name(),
        spec.seed_for(phase),
        spec.cores,
    );
    match chaos {
        Some(f) => desc.push_str(&format!(
            "chaos: seed {} latency {} drop {}ppm dup {}ppm corrupt {}ppm\n",
            f.seed, f.max_extra_latency, f.drop_ppm, f.dup_ppm, f.corrupt_ppm
        )),
        None => desc.push_str("chaos: off\n"),
    }
    if spec.inject > 0 {
        desc.push_str(&format!(
            "injected net-zero FAA bug: countdown {}\n",
            spec.inject
        ));
    }
    desc.push_str(&format!(
        "checkpoint: {}\n",
        if ckpt.exists() {
            ckpt.display().to_string()
        } else {
            "none written before the failure".to_string()
        }
    ));
    let unshrunk = chaos.unwrap_or(FaultConfig {
        seed: 0,
        max_extra_latency: 0,
        drop_ppm: 0,
        dup_ppm: 0,
        corrupt_ppm: 0,
    });
    desc.push_str(&format!(
        "repro: {}\nerror:\n{err}\n",
        spec.repro_cmd(phase, policy, &unshrunk)
    ));
    match norush::sim::triage::write_failure(&spec.repro_dir, "soak_failure.txt", &desc) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write soak_failure.txt: {e}"),
    }
    match norush::sim::triage::write_journal_tail(&spec.repro_dir, m) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("cannot write journal_tail.txt: {e}"),
    }
    let Some(initial) = chaos else {
        eprintln!("no chaos was active; nothing to shrink");
        return;
    };
    shrink_and_report(
        &spec.repro_dir,
        initial,
        &|min| spec.repro_cmd(phase, policy, min),
        &mut |cand| {
            let mut exp = spec.exp_for(phase);
            exp.check.chaos = Some(*cand);
            let Ok(sys) = system_for(policy, &exp) else {
                return false;
            };
            let mut pm = Machine::new(&sys, spec.streams_for(phase));
            if spec.inject > 0 {
                pm.memory_mut().inject_net_zero_faa_for_test(spec.inject);
            }
            pm.run(spec.phase_cycles).is_err()
        },
    );
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable soak report (`norush-soak-v1`; documented
/// in `results/README.md`).
fn soak_json(spec: &SoakSpec, outcomes: &[SoakOutcome], status: &str) -> String {
    let mut runs = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            runs.push_str(",\n");
        }
        let chaos = match &o.chaos {
            Some(f) => format!(
                "{{\"seed\": {}, \"latency\": {}, \"drop_ppm\": {}, \"dup_ppm\": {}, \
                 \"corrupt_ppm\": {}}}",
                f.seed, f.max_extra_latency, f.drop_ppm, f.dup_ppm, f.corrupt_ppm
            ),
            None => "null".to_string(),
        };
        let lat = match &o.lat {
            Some(l) => format!(
                "{{\"count\": {}, \"mean\": {:.2}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
                 \"max\": {}}}",
                l.count, l.mean, l.p50, l.p99, l.p999, l.max
            ),
            None => "null".to_string(),
        };
        let checker = match &o.checker {
            Some((ops, rmws, live)) => {
                format!("{{\"ops\": {ops}, \"rmws\": {rmws}, \"live_words\": {live}}}")
            }
            None => "null".to_string(),
        };
        let error = match &o.error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".to_string(),
        };
        runs.push_str(&format!(
            "    {{\"phase\": {}, \"kernel\": \"{}\", \"policy\": \"{}\", \"chaos\": {chaos}, \
             \"status\": \"{}\", \"cycles\": {}, \"ipc\": {:.4}, \"atomics\": {}, \
             \"latency\": {lat}, \"checker\": {checker}, \"error\": {error}}}",
            o.phase, o.kernel, o.policy, o.status, o.cycles, o.ipc, o.atomics,
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{}\",\n",
            "  \"status\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"cores\": {},\n",
            "  \"phases\": {},\n",
            "  \"policies\": [{}],\n",
            "  \"phase_cycles\": {},\n",
            "  \"wall_secs\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SOAK_SCHEMA,
        status,
        spec.seed,
        spec.cores,
        spec.phases,
        spec.policies
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect::<Vec<_>>()
            .join(", "),
        spec.phase_cycles,
        spec.wall_secs,
        runs,
    )
}

/// `norush soak`: a phased lock-service soak with the online per-operation
/// linearizability checker armed. Each phase rotates the service kernel and
/// escalates the lossy chaos rates; each phase x policy cell runs under a
/// cycle budget, the whole soak under a wall budget, with periodic
/// checkpoints. Any violation triggers triage (`soak_repro/` bundle plus a
/// shrunk chaos repro) and a non-zero exit; the machine-readable report
/// always lands in `--out` (default `soak_report.json`).
fn cmd_soak(args: &Args) -> CliResult {
    let spec = soak_spec(args)?;
    let deadline = Instant::now() + Duration::from_secs(spec.wall_secs);
    println!(
        "soak: {} phases x [{}] on {} cores, seed {}, kernel {}, online checker armed",
        spec.phases,
        spec.policies.join(", "),
        spec.cores,
        spec.seed,
        spec.kernel.map(|k| k.name()).unwrap_or("rotating"),
    );
    let mut outcomes: Vec<SoakOutcome> = Vec::new();
    let mut failed = false;
    'phases: for phase in 0..spec.phases {
        let kernel = spec.kernel_for(phase);
        let chaos = spec.chaos_for(phase);
        match chaos {
            Some(f) => println!(
                "phase {phase}: kernel {}, chaos latency {} drop {}ppm dup {}ppm corrupt {}ppm",
                kernel.name(),
                f.max_extra_latency,
                f.drop_ppm,
                f.dup_ppm,
                f.corrupt_ppm
            ),
            None => println!("phase {phase}: kernel {}, chaos off", kernel.name()),
        }
        for policy in &spec.policies {
            let mut m = spec.machine_for(phase, policy)?;
            let ckpt = spec.repro_dir.join(format!("soak_p{phase}_{policy}.ckpt"));
            match run_soak_phase(&mut m, spec.phase_cycles, spec.ckpt_every, &ckpt, deadline) {
                Ok(r) => {
                    let h = &r.total.atomic_latency;
                    println!(
                        "  {policy:8} {:>9} cycles  ipc {:>5.2}  atomics {:>6}  \
                         latency p50/p99/p999 {}/{}/{} cycles",
                        r.cycles,
                        r.ipc(),
                        r.total.atomics,
                        h.percentile(0.50),
                        h.percentile(0.99),
                        h.percentile(0.999),
                    );
                    outcomes.push(SoakOutcome {
                        phase,
                        kernel: kernel.name(),
                        policy: policy.clone(),
                        chaos,
                        status: "ok",
                        error: None,
                        cycles: r.cycles,
                        ipc: r.ipc(),
                        atomics: r.total.atomics,
                        lat: Some(LatSummary {
                            count: h.count(),
                            mean: h.mean(),
                            p50: h.percentile(0.50),
                            p99: h.percentile(0.99),
                            p999: h.percentile(0.999),
                            max: h.max(),
                        }),
                        checker: m
                            .online_checker()
                            .map(|c| (c.ops_seen(), c.rmws(), c.live_words())),
                    });
                    // The cell finished: its checkpoint is spent.
                    std::fs::remove_file(&ckpt).ok();
                }
                Err(PhaseFailure::Wall { at_cycle }) => {
                    eprintln!(
                        "wall budget ({}s) exhausted in phase {phase}, policy {policy}, \
                         cycle {at_cycle}",
                        spec.wall_secs
                    );
                    outcomes.push(SoakOutcome {
                        phase,
                        kernel: kernel.name(),
                        policy: policy.clone(),
                        chaos,
                        status: "wall-budget",
                        error: Some(format!("wall budget exhausted at cycle {at_cycle}")),
                        cycles: at_cycle,
                        ipc: 0.0,
                        atomics: 0,
                        lat: None,
                        checker: m
                            .online_checker()
                            .map(|c| (c.ops_seen(), c.rmws(), c.live_words())),
                    });
                    failed = true;
                    break 'phases;
                }
                Err(PhaseFailure::Sim(e)) => {
                    eprintln!("phase {phase}, policy {policy} failed:\n{e}");
                    soak_triage(&spec, phase, policy, &e, &m, &ckpt);
                    outcomes.push(SoakOutcome {
                        phase,
                        kernel: kernel.name(),
                        policy: policy.clone(),
                        chaos,
                        status: "violation",
                        error: Some(e.to_string()),
                        cycles: m.now().raw(),
                        ipc: 0.0,
                        atomics: 0,
                        lat: None,
                        checker: m
                            .online_checker()
                            .map(|c| (c.ops_seen(), c.rmws(), c.live_words())),
                    });
                    failed = true;
                    break 'phases;
                }
            }
        }
    }
    let status = if failed { "fail" } else { "pass" };
    let json = soak_json(&spec, &outcomes, status);
    // Same atomic write discipline as checkpoints and sweep results.
    let tmp = spec.out.with_extension("json.tmp");
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, &spec.out)?;
    println!("soak {status}: report written to {}", spec.out.display());
    if failed {
        eprintln!("triage bundle in {}", spec.repro_dir.display());
        std::process::exit(1);
    }
    Ok(())
}

/// Builds the fuzz campaign options from the command line.
fn fuzz_opts(args: &Args) -> Result<norush::sim::FuzzOptions, Box<dyn std::error::Error>> {
    let policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("lazy")
        .to_string();
    let kernel = match args.flags.get("kernel") {
        Some(v) => ServiceKernel::parse(v).ok_or_else(|| {
            format!("--kernel: `{v}` is not a service kernel (counter, mpmc-queue, mw-register)")
        })?,
        None => ServiceKernel::Counter,
    };
    let mut opts = norush::sim::FuzzOptions::smoke(policy);
    opts.kernel = kernel;
    opts.cores = args.num_in("cores", 4, 2, 64, "need concurrency to race")? as usize;
    opts.ops_per_thread = args.num_in("ops", 120, 1, 100_000, "service ops per thread")?;
    opts.seed = args.num("seed", 42)?;
    opts.budget = args.num_in("budget", 256, 1, 1_000_000, "total schedule executions")?;
    opts.jobs = jobs_from(args)?;
    opts.planted_bug = args.switches.contains("inject-early-unblock");
    opts.cycle_limit = args.num_in(
        "cycles",
        2_000_000,
        100_000,
        1_000_000_000,
        "per-run cycle budget; exhausting it is reported as a livelock",
    )?;
    opts.watchdog = args.num_in("watchdog", 500_000, 1_000, 1_000_000_000, "stall window")?;
    Ok(opts)
}

/// The copy-pasteable command that replays a fuzz schedule.
fn fuzz_repro_cmd(opts: &norush::sim::FuzzOptions, genome: &norush::sim::ScheduleGenome) -> String {
    format!(
        "norush fuzz --policy {} --kernel {} --cores {} --ops {} --seed {}{} --replay {}",
        opts.policy,
        opts.kernel.name(),
        opts.cores,
        opts.ops_per_thread,
        opts.seed,
        if opts.planted_bug {
            " --inject-early-unblock"
        } else {
            ""
        },
        genome.to_hex(),
    )
}

/// `norush fuzz` — coverage-guided protocol-schedule fuzzing with schedule
/// minimization, soak-style triage, and a persistent corpus.
fn cmd_fuzz(args: &Args) -> CliResult {
    use norush::sim::fuzz;
    let opts = fuzz_opts(args)?;
    // Replay mode: execute one schedule from its hex genome and report.
    if let Some(hex) = args.flags.get("replay") {
        let genome = fuzz::ScheduleGenome::from_hex(hex)?;
        println!("replaying schedule: {}", genome.describe());
        let out = fuzz::run_one(&opts, &genome).map_err(Box::<dyn std::error::Error>::from)?;
        println!(
            "coverage: {}/{} transitions",
            out.coverage.covered(),
            norush::common::coverage::SLOT_COUNT
        );
        match out.violation {
            Some(err) => {
                eprintln!("violation reproduced:\n{err}");
                std::process::exit(1);
            }
            None => {
                println!("no violation");
                return Ok(());
            }
        }
    }
    let fingerprint = opts.fingerprint();
    let state_path = PathBuf::from(
        args.flags
            .get("state")
            .map(String::as_str)
            .unwrap_or("fuzz_state.bin"),
    );
    let state = if args.switches.contains("resume") {
        let s = fuzz::FuzzState::load(&state_path, fingerprint)?;
        println!(
            "resuming from {}: generation {}, {} runs done, corpus {}",
            state_path.display(),
            s.generation,
            s.runs_done,
            s.corpus.len()
        );
        s
    } else {
        fuzz::FuzzState::new()
    };
    let out_path = PathBuf::from(
        args.flags
            .get("out")
            .map(String::as_str)
            .unwrap_or("fuzz_report.json"),
    );
    let repro_dir = repro_dir_from(args, "fuzz_repro")?;
    println!(
        "fuzz: policy {}, kernel {}, {} cores, seed {}, budget {} runs, {} workers{}",
        opts.policy,
        opts.kernel.name(),
        opts.cores,
        opts.seed,
        opts.budget,
        opts.jobs,
        if opts.planted_bug {
            ", planted early-unblock bug ARMED"
        } else {
            ""
        },
    );
    let outcome = fuzz::fuzz(&opts, state, |s| {
        if let Err(e) = s.save(&state_path, fingerprint) {
            eprintln!("cannot save {}: {e}", state_path.display());
        }
        println!(
            "gen {:>3}: {:>5} runs, corpus {:>3}, coverage {}/{}",
            s.generation,
            s.runs_done,
            s.corpus.len(),
            s.global.covered(),
            norush::common::coverage::SLOT_COUNT,
        );
    })
    .map_err(Box::<dyn std::error::Error>::from)?;
    let repro = outcome
        .finding
        .as_ref()
        .map(|f| fuzz_repro_cmd(&opts, &f.minimized));
    let json = fuzz::report_json(&opts, &outcome, repro.as_deref());
    let tmp = out_path.with_extension("json.tmp");
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, &out_path)?;
    let s = &outcome.state;
    for (name, covered, total) in s.global.domain_summary() {
        println!("  coverage {name:10} {covered:>3}/{total}");
    }
    match &outcome.finding {
        Some(f) => {
            eprintln!(
                "FINDING ({}) in generation {}, candidate {}:\n{}",
                f.kind, f.generation, f.candidate, f.error
            );
            eprintln!("minimized schedule: {}", f.minimized.describe());
            fuzz::write_triage(&opts, f, &repro_dir, repro.as_deref().unwrap_or(""))?;
            eprintln!("triage bundle in {}", repro_dir.display());
            eprintln!("repro: {}", repro.unwrap_or_default());
            println!("fuzz finding: report written to {}", out_path.display());
            std::process::exit(1);
        }
        None => {
            println!(
                "fuzz clean: {} runs, {} never-exercised transitions, report written to {}",
                s.runs_done,
                s.global.uncovered_names().len(),
                out_path.display()
            );
            Ok(())
        }
    }
}

/// Builds the shared litmus/explore options from the command line.
fn explore_opts(args: &Args) -> Result<norush::sim::ExploreOptions, Box<dyn std::error::Error>> {
    let mut opts = norush::sim::ExploreOptions::default();
    opts.policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("eager")
        .to_string();
    opts.max_decisions = args.num_in(
        "depth",
        opts.max_decisions as u64,
        1,
        64,
        "branchable decision-point horizon",
    )? as usize;
    opts.max_delays = args.num_in(
        "delays",
        opts.max_delays as u64,
        1,
        16,
        "nonzero deviations per enumerated schedule",
    )? as usize;
    opts.max_runs = args.num_in(
        "max-runs",
        opts.max_runs,
        1,
        10_000_000,
        "enumerated schedules per cell",
    )?;
    opts.cycle_limit = args.num_in(
        "cycles",
        opts.cycle_limit,
        10_000,
        1_000_000_000,
        "per-run cycle budget; exhausting it is reported as a livelock",
    )?;
    opts.planted_bug = args.switches.contains("inject-early-unblock");
    // Fail on an unknown policy here, before any cells run.
    opts.system(2).map_err(Box::<dyn std::error::Error>::from)?;
    Ok(opts)
}

/// Parses `--test T[,U,...]`; absent means the whole suite.
fn litmus_tests_from(args: &Args) -> Result<Vec<LitmusTest>, Box<dyn std::error::Error>> {
    let Some(v) = args.flags.get("test") else {
        return Ok(LitmusTest::all());
    };
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            LitmusTest::by_name(name).ok_or_else(|| {
                format!(
                    "--test: `{name}` is not a litmus test ({})",
                    LitmusTest::names().join(", ")
                )
                .into()
            })
        })
        .collect()
}

/// The copy-pasteable command that replays an explore schedule.
fn explore_repro_cmd(
    test: &LitmusTest,
    opts: &norush::sim::ExploreOptions,
    sched: &[u8],
) -> String {
    format!(
        "norush explore --test {} --policy {}{} --replay {}",
        test.name,
        opts.policy,
        if opts.planted_bug {
            " --inject-early-unblock"
        } else {
            ""
        },
        norush::sim::schedule_to_hex(sched),
    )
}

/// Writes the explore triage bundle: `explore_failure.txt` with the
/// (minimized) schedule and repro command, plus the online-checker journal
/// tail from replaying the minimized schedule.
fn explore_triage(
    test: &LitmusTest,
    opts: &norush::sim::ExploreOptions,
    v: &norush::sim::ExploreViolation,
    dir: &Path,
) {
    use norush::sim::triage;
    let desc = format!(
        "explore failure\ntest: {}\npolicy: {}\nkind: {}\ndetail: {}\n\
         schedule: {}\nminimized: {}\nminimized detail: {}\nrepro: {}\n",
        test.name,
        opts.policy,
        v.kind,
        v.detail,
        norush::sim::schedule_to_hex(&v.schedule),
        norush::sim::schedule_to_hex(&v.minimized),
        v.minimized_detail,
        explore_repro_cmd(test, opts, &v.minimized),
    );
    match triage::write_failure(dir, "explore_failure.txt", &desc) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write explore_failure.txt: {e}"),
    }
    match norush::sim::run_schedule_full(test, opts, &v.minimized) {
        Ok((_, m)) => match triage::write_journal_tail(dir, &m) {
            Ok(Some(path)) => eprintln!("wrote {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("cannot write journal_tail.txt: {e}"),
        },
        Err(e) => eprintln!("cannot replay minimized schedule for journal tail: {e}"),
    }
}

/// Renders one litmus/explore cell as a `norush-litmus-v1` JSON object.
fn litmus_cell_json(r: &norush::sim::ExploreReport) -> String {
    use norush::sim::{fmt_outcome, schedule_to_hex};
    let outcomes = r
        .outcomes
        .iter()
        .map(|(o, n)| format!("\"{}\": {n}", fmt_outcome(o)))
        .collect::<Vec<_>>()
        .join(", ");
    let unwitnessed = r
        .unwitnessed
        .iter()
        .map(|o| format!("\"{}\"", fmt_outcome(o)))
        .collect::<Vec<_>>()
        .join(", ");
    let violation = match &r.violation {
        None => "null".to_string(),
        Some(v) => format!(
            "{{\"kind\": \"{}\", \"detail\": \"{}\", \"schedule\": \"{}\", \
             \"minimized\": \"{}\", \"minimized_detail\": \"{}\"}}",
            json_escape(&v.kind),
            json_escape(&v.detail),
            schedule_to_hex(&v.schedule),
            schedule_to_hex(&v.minimized),
            json_escape(&v.minimized_detail),
        ),
    };
    format!(
        "    {{\"test\": \"{}\", \"policy\": \"{}\", \"runs\": {}, \"states\": {}, \
         \"dedup_hits\": {}, \"dpor_pruned\": {}, \"max_decision_points\": {}, \
         \"truncated\": {}, \"coverage_covered\": {}, \"outcomes\": {{{outcomes}}}, \
         \"unwitnessed\": [{unwitnessed}], \"violation\": {violation}}}",
        json_escape(&r.test),
        json_escape(&r.policy),
        r.runs,
        r.states,
        r.dedup_hits,
        r.dpor_pruned,
        r.max_decision_points,
        r.truncated,
        r.coverage.covered(),
    )
}

/// Renders the machine-readable litmus/explore report (`norush-litmus-v1`;
/// documented in `results/README.md`). Deterministic for a given
/// configuration — independent of `--jobs` — so CI can diff reports.
fn litmus_json(mode: &str, extra: &str, cells: &[norush::sim::ExploreReport]) -> String {
    let mut union = norush::common::coverage::CoverageMap::new();
    for r in cells {
        union.merge(&r.coverage);
    }
    let body = cells
        .iter()
        .map(litmus_cell_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let status = if cells.iter().any(|r| r.violation.is_some()) {
        "violation"
    } else {
        "ok"
    };
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"mode\": \"{mode}\",\n{extra}  \
         \"status\": \"{status}\",\n  \"coverage\": {{\"covered\": {}, \"total\": {}}},\n  \
         \"cells\": [\n{body}\n  ]\n}}\n",
        norush::sim::LITMUS_SCHEMA,
        union.covered(),
        norush::common::coverage::SLOT_COUNT,
    )
}

/// Prints the human-readable summary line for one cell.
fn litmus_cell_line(r: &norush::sim::ExploreReport) {
    println!(
        "{:8} {:8} {:>6} runs {:>3} outcomes {:>2} unwitnessed  {}",
        r.test,
        r.policy,
        r.runs,
        r.outcomes.len(),
        r.unwitnessed.len(),
        match &r.violation {
            Some(v) => format!("VIOLATION ({})", v.kind),
            None if r.truncated => "truncated".to_string(),
            None => "ok".to_string(),
        }
    );
}

/// `norush litmus` — runs the TSO litmus suite in sampling mode under one or
/// more policies, recording outcome frequencies and conformance.
fn cmd_litmus(args: &Args) -> CliResult {
    let base = explore_opts(args)?;
    let policies: Vec<String> = match args.flags.get("policies").or(args.flags.get("policy")) {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        None => vec!["eager".into(), "lazy".into(), "row".into()],
    };
    for p in &policies {
        let mut o = base.clone();
        o.policy = p.clone();
        o.system(2).map_err(Box::<dyn std::error::Error>::from)?;
    }
    let tests = litmus_tests_from(args)?;
    let samples = args.num_in("samples", 32, 1, 100_000, "schedules per cell")?;
    let seed = args.num("seed", 42)?;
    let jobs = jobs_from(args)?;
    let out_path = PathBuf::from(
        args.flags
            .get("out")
            .map(String::as_str)
            .unwrap_or("litmus_report.json"),
    );
    let repro_dir = repro_dir_from(args, "explore_repro")?;
    let cells: Vec<(LitmusTest, String)> = tests
        .iter()
        .flat_map(|t| policies.iter().map(move |p| (t.clone(), p.clone())))
        .collect();
    println!(
        "litmus: {} tests x {} policies, {} samples/cell, seed {}, {} workers",
        tests.len(),
        policies.len(),
        samples,
        seed,
        jobs
    );
    let results = norush::sim::parallel_map(&cells, jobs, |_, (test, policy)| {
        let mut o = base.clone();
        o.policy = policy.clone();
        norush::sim::run_litmus(test, &o, samples, seed)
    });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r.map_err(Box::<dyn std::error::Error>::from)?);
    }
    for r in &reports {
        litmus_cell_line(r);
    }
    let extra = format!("  \"samples\": {samples},\n  \"seed\": {seed},\n");
    let json = litmus_json("sample", &extra, &reports);
    let tmp = out_path.with_extension("json.tmp");
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, &out_path)?;
    println!("report written to {}", out_path.display());
    if let Some((idx, v)) = reports
        .iter()
        .enumerate()
        .find_map(|(i, r)| r.violation.as_ref().map(|v| (i, v)))
    {
        let (test, policy) = &cells[idx];
        let mut o = base.clone();
        o.policy = policy.clone();
        eprintln!(
            "VIOLATION ({}) in {}/{}: {}",
            v.kind, test.name, policy, v.detail
        );
        explore_triage(test, &o, v, &repro_dir);
        eprintln!("triage bundle in {}", repro_dir.display());
        eprintln!("repro: {}", explore_repro_cmd(test, &o, &v.minimized));
        std::process::exit(1);
    }
    Ok(())
}

/// `norush explore` — bounded-exhaustive schedule exploration of litmus
/// cells: DFS over delivery/commit decision points with partial-order
/// reduction and state-hash dedup.
fn cmd_explore(args: &Args) -> CliResult {
    let opts = explore_opts(args)?;
    // Replay mode: execute one decision vector and report.
    if let Some(hex) = args.flags.get("replay") {
        let name = args
            .flags
            .get("test")
            .ok_or("--replay needs --test <name> (the schedule is test-relative)")?;
        let test = LitmusTest::by_name(name)
            .ok_or_else(|| format!("--test: `{name}` is not a litmus test"))?;
        let forced = norush::sim::schedule_from_hex(hex)?;
        println!(
            "replaying {} under {}: schedule {}",
            test.name,
            opts.policy,
            norush::sim::schedule_to_hex(&forced)
        );
        let run = norush::sim::run_schedule(&test, &opts, &forced)
            .map_err(Box::<dyn std::error::Error>::from)?;
        if let Some(o) = &run.outcome {
            println!(
                "outcome: ({}) [{:?}]",
                norush::sim::fmt_outcome(o),
                test.classify(o)
            );
        }
        println!("decision points: {}", run.decisions.len());
        let violated = run.error.is_some()
            || run.timed_out
            || run
                .outcome
                .as_ref()
                .is_some_and(|o| test.classify(o) != OutcomeClass::Allowed);
        if violated {
            if let Some(e) = &run.error {
                eprintln!("violation reproduced:\n{e}");
            } else if run.timed_out {
                eprintln!("violation reproduced: livelock (cycle budget exhausted)");
            } else {
                eprintln!("violation reproduced: non-allowed outcome");
            }
            std::process::exit(1);
        }
        println!("no violation");
        return Ok(());
    }
    let tests = litmus_tests_from(args)?;
    let jobs = jobs_from(args)?;
    let require_witness = args.switches.contains("require-witness");
    let out_path = PathBuf::from(
        args.flags
            .get("out")
            .map(String::as_str)
            .unwrap_or("explore_report.json"),
    );
    let repro_dir = repro_dir_from(args, "explore_repro")?;
    println!(
        "explore: {} tests under {}, depth {}, delay bound {}, {} workers{}",
        tests.len(),
        opts.policy,
        opts.max_decisions,
        opts.max_delays,
        jobs,
        if opts.planted_bug {
            ", planted early-unblock bug ARMED"
        } else {
            ""
        },
    );
    let results =
        norush::sim::parallel_map(&tests, jobs, |_, test| norush::sim::explore(test, &opts));
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r.map_err(Box::<dyn std::error::Error>::from)?);
    }
    for r in &reports {
        litmus_cell_line(r);
        for u in &r.unwitnessed {
            eprintln!(
                "  warning: {}/{} never witnessed allowed outcome ({})",
                r.test,
                r.policy,
                norush::sim::fmt_outcome(u)
            );
        }
    }
    let extra = format!(
        "  \"depth\": {},\n  \"delays\": {},\n",
        opts.max_decisions, opts.max_delays
    );
    let json = litmus_json("explore", &extra, &reports);
    let tmp = out_path.with_extension("json.tmp");
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, &out_path)?;
    println!("report written to {}", out_path.display());
    if let Some((idx, v)) = reports
        .iter()
        .enumerate()
        .find_map(|(i, r)| r.violation.as_ref().map(|v| (i, v)))
    {
        let test = &tests[idx];
        eprintln!(
            "VIOLATION ({}) in {}/{}: {}",
            v.kind, test.name, opts.policy, v.detail
        );
        eprintln!(
            "minimized schedule: {} ({} of {} decisions nonzero)",
            norush::sim::schedule_to_hex(&v.minimized),
            v.minimized.iter().filter(|&&a| a != 0).count(),
            v.minimized.len(),
        );
        explore_triage(test, &opts, v, &repro_dir);
        eprintln!("triage bundle in {}", repro_dir.display());
        eprintln!("repro: {}", explore_repro_cmd(test, &opts, &v.minimized));
        std::process::exit(1);
    }
    if require_witness && reports.iter().any(|r| !r.unwitnessed.is_empty()) {
        eprintln!("--require-witness: some allowed outcomes went unwitnessed (see warnings)");
        std::process::exit(1);
    }
    Ok(())
}

/// Parses `--jobs N` (worker threads for `compare`); absent means all host
/// cores. Mirrors the `--chaos-*` range-validation style.
fn jobs_from(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    let Some(v) = args.flags.get("jobs") else {
        return Ok(norush::sim::available_workers());
    };
    let n: usize = v
        .parse()
        .map_err(|e| format!("--jobs: `{v}` is not a worker count ({e})"))?;
    if !(1..=4096).contains(&n) {
        return Err(
            format!("--jobs: {n} out of range [1, 4096] (need at least one worker)").into(),
        );
    }
    Ok(n)
}

fn cmd_compare(args: &Args) -> CliResult {
    let bench = bench_by_name(
        args.positional
            .first()
            .ok_or("usage: compare <benchmark>")?,
    )?;
    let exp = exp_from(args)?;
    let jobs = jobs_from(args)?;
    println!(
        "{bench} on {} cores ({} instructions/thread):\n",
        exp.cores, exp.instructions
    );
    let variants = [
        Variant::eager(),
        Variant::lazy(),
        Variant::custom(
            "row",
            AtomicPolicy::Row(RowConfig::best().with_locality_override(false)),
        ),
        Variant::custom("row-fwd", AtomicPolicy::Row(RowConfig::best())).with_forwarding(),
        Variant::far(),
    ];
    let sweep = Sweep::grid("compare", &exp, &[bench], &variants, &[]);
    let r = sweep.run(&SweepOptions {
        workers: jobs,
        ..SweepOptions::default()
    })?;
    println!(
        "{:10} {:>10} {:>8} {:>6} {:>8} {:>8}",
        "policy", "cycles", "vs eager", "IPC", "atomics", "cont"
    );
    let mut baseline = None;
    for v in &variants {
        let s = r.stat(&format!("{}/{}", bench.name(), v.name));
        summarize(&v.name, s, baseline);
        baseline.get_or_insert(s.cycles);
    }
    Ok(())
}

fn cmd_list() -> CliResult {
    println!(
        "{:15} {:>12} {:>10} {:>9} {:>9}",
        "benchmark", "atomics/10k", "contended", "locality", "hot-lines"
    );
    for b in Benchmark::all() {
        let p = b.profile();
        println!(
            "{:15} {:>12.1} {:>9.0}% {:>8.0}% {:>9}",
            b.name(),
            p.atomics_per_10k,
            100.0 * p.contended_fraction,
            100.0 * p.locality_fraction,
            p.hot_lines
        );
    }
    Ok(())
}

fn cmd_microbench(args: &Args) -> CliResult {
    let iters = args.num("iters", 500)?;
    let model = if args.switches.contains("fenced") {
        FenceModel::Fenced
    } else {
        FenceModel::Unfenced
    };
    println!(
        "{:6} {:>9} {:>14} {:>9} {:>13}",
        "rmw", "plain", "plain+mfence", "lock", "lock+mfence"
    );
    for rmw in MicroRmw::ALL {
        print!("{:6}", rmw.name());
        for variant in MicroVariant::ALL {
            let cpi = run_microbench(rmw, variant, model, iters)?;
            let w = [9, 14, 9, 13][MicroVariant::ALL
                .iter()
                .position(|v| *v == variant)
                .expect("member")];
            print!(" {cpi:>w$.1}", w = w);
        }
        println!();
    }
    Ok(())
}

fn cmd_record(args: &Args) -> CliResult {
    let bench = bench_by_name(
        args.positional
            .first()
            .ok_or("usage: record <benchmark> <file>")?,
    )?;
    let path = args
        .positional
        .get(1)
        .ok_or("usage: record <benchmark> <file>")?;
    let instr = args.num("instr", 10_000)?;
    let tid = args.num("tid", 0)? as usize;
    let threads = args.num("threads", 32)? as usize;
    let seed = args.num("seed", 42)?;
    let profile = bench.profile().with_instructions(instr);
    let n =
        norush::workloads::record_to_file(path, ProfileStream::new(profile, tid, threads, seed))?;
    println!("recorded {n} instructions of {bench} (thread {tid}/{threads}) to {path}");
    Ok(())
}

fn cmd_replay(args: &Args) -> CliResult {
    let path = args.positional.first().ok_or("usage: replay <file>")?;
    let policy = args
        .flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("eager");
    let exp = ExperimentConfig {
        cores: 1,
        instructions: 0,
        seed: 0,
        cycle_limit: 2_000_000_000,
        paper_caches: true,
        check: norush::common::config::CheckConfig::default(),
    };
    let mut sys = system_for(policy, &exp)?;
    sys.cores = 1;
    let stream: Box<dyn InstrStream> = Box::new(TraceFileStream::open(path)?);
    let r = Machine::new(&sys, vec![stream])
        .run(exp.cycle_limit)
        .expect("replay drains");
    println!(
        "replayed {path} under {policy}: {} cycles, IPC {:.2}, {} atomics",
        r.cycles,
        r.ipc(),
        r.total.atomics
    );
    Ok(())
}

fn cmd_table1() -> CliResult {
    let cfg = SystemConfig::alder_lake_32c();
    println!(
        "cores {}, widths {}/{}/{}, ROB {}, LQ {}, SB {}, AQ {}",
        cfg.cores,
        cfg.core.fetch_width,
        cfg.core.issue_width,
        cfg.core.commit_width,
        cfg.core.rob_entries,
        cfg.core.lq_entries,
        cfg.core.sb_entries,
        cfg.core.aq_entries
    );
    println!(
        "L1D {}KB/{}w/{}cyc, L2 {}KB/{}w/{}cyc, L3 {}KB/{}w/{}cyc per bank, mem {}cyc",
        cfg.mem.l1d.size_bytes / 1024,
        cfg.mem.l1d.ways,
        cfg.mem.l1d.hit_latency,
        cfg.mem.l2.size_bytes / 1024,
        cfg.mem.l2.ways,
        cfg.mem.l2.hit_latency,
        cfg.mem.l3_bank.size_bytes / 1024,
        cfg.mem.l3_bank.ways,
        cfg.mem.l3_bank.hit_latency,
        cfg.mem.mem_latency
    );
    Ok(())
}

fn usage() -> CliResult {
    println!("norush — Rush-or-Wait atomic-scheduling simulator");
    println!();
    println!("commands:");
    println!("  list                               calibrated benchmark models");
    println!("  table1                             Table I system parameters");
    println!("  run <bench> [--policy P] [...]     one simulation with stats");
    println!("  profile <bench> [--policy P] [...] one simulation with a cycles/sec +");
    println!("                                     per-component wall-clock breakdown");
    println!("  compare <bench> [--jobs N] [...]   eager/lazy/row/row-fwd/far table");
    println!("  soak [--phases N] [...]            phased lock-service soak with the online");
    println!("                                     linearizability checker and failure triage");
    println!("  fuzz [--budget N] [...]            coverage-guided protocol-schedule fuzzing");
    println!("                                     with minimization and failure triage");
    println!("  litmus [--test T,U] [...]          TSO litmus conformance suite (sampling");
    println!("                                     mode) across one or more policies");
    println!("  explore [--test T,U] [...]         bounded-exhaustive schedule exploration");
    println!("                                     of litmus cells (DPOR + state dedup)");
    println!("  microbench [--iters N] [--fenced]  Fig. 2 cycles/iteration");
    println!("  record <bench> <file> [...]        capture a trace file");
    println!("  replay <file> [--policy P]         replay a trace file");
    println!();
    println!("common flags: --cores N --instr N --seed S --cycles LIMIT");
    println!("robustness:   --check [K]   invariant sweep every K cycles + deadlock watchdog");
    println!("              --watchdog N  watchdog window in cycles (default 5000000)");
    println!("              --rewind K    in-memory checkpoint every K cycles; on a");
    println!("                            violation, replay from it and report the first");
    println!("                            offending cycle");
    println!("              --chaos SEED  seeded message-delivery perturbation");
    println!("              --chaos-latency N  cap on injected delivery jitter (cycles)");
    println!("              --chaos-drop P     drop each message with probability P (<= 0.05)");
    println!("              --chaos-dup P      duplicate each message with probability P");
    println!("              --chaos-corrupt P  corrupt payloads with probability P;");
    println!("                                 lossy faults engage the recoverable transport");
    println!("                                 (sequencing, dedup, checksums, retransmission)");
    println!("              --oracle      differentially check the finished run against a");
    println!("                            sequential golden model (journal replay)");
    println!("              --chaos-shrink     on failure, minimize the chaos config while");
    println!("                                 the failure persists; writes chaos_repro.txt");
    println!("              --repro-dir D      where shrunk repros / triage bundles land");
    println!("                                 (run: cwd; soak: soak_repro; fuzz: fuzz_repro;");
    println!("                                 litmus/explore: explore_repro)");
    println!("soak flags:   --phases N --policies P,Q --kernel K|rotate --cores N --seed S");
    println!("              --ops N --shards N --keys N --zipf-theta T --read-frac F");
    println!("              --mean-gap G --burst-epoch N --burst-factor B");
    println!("              --chaos SEED --chaos-latency N --chaos-drop/-dup/-corrupt P");
    println!("              --chaos-escalation F   per-phase multiplier on the lossy rates");
    println!("              --phase-cycles N --wall-secs S --checkpoint-every K");
    println!("              --watchdog N --out FILE --inject-net-zero-faa N (test bug)");
    println!("fuzz flags:   --policy P --kernel K --budget N --seed S --jobs N --cores N");
    println!("              --ops N --cycles LIMIT --watchdog N --state FILE --out FILE");
    println!("              --repro-dir D (default fuzz_repro)");
    println!("              --inject-early-unblock   arm the planted directory bug (test bug)");
    println!("              --resume                 continue a campaign from --state");
    println!("              --replay HEX             re-execute one schedule from its genome");
    println!("litmus flags: --test T[,U] --policies P,Q --samples N --seed S --jobs N");
    println!("              --cycles LIMIT --out FILE --repro-dir D (default explore_repro)");
    println!("explore flags: --test T[,U] --policy P --depth N --delays N --max-runs N");
    println!("              --cycles LIMIT --jobs N --out FILE --repro-dir D");
    println!("              --require-witness        also fail when an allowed outcome went");
    println!("                                       unwitnessed within the bounds");
    println!("              --inject-early-unblock   arm the planted directory bug (test bug)");
    println!(
        "              --replay HEX             re-execute one decision vector (needs --test)"
    );
    println!("checkpointing (run): --checkpoint-every K --ckpt-dir D --resume");
    println!("policies: eager lazy row row-fwd far");
    println!("litmus tests: {}", LitmusTest::names().join(" "));
    println!();
    println!("exit codes: 0 = clean; 1 = conformance violation, fuzz finding, soak/run");
    println!("            failure, or a configuration/usage error (message on stderr)");
    Ok(())
}

/// Focused `--help` text for one subcommand: the command line from the
/// header plus the flag groups that apply to it. `norush <cmd> --help`.
fn sub_help(cmd: &str) -> CliResult {
    let text = match cmd {
        "list" => "norush list\n  Print the calibrated benchmark models (no flags).",
        "table1" => "norush table1\n  Print the Table I system parameters (no flags).",
        "run" => {
            "norush run <benchmark> [--cores N] [--instr N] [--seed S] [--policy P]\n\
             \x20          [--check [K]] [--watchdog N] [--rewind K] [--chaos SEED]\n\
             \x20          [--chaos-latency N] [--chaos-drop P] [--chaos-dup P]\n\
             \x20          [--chaos-corrupt P] [--oracle] [--chaos-shrink] [--repro-dir D]\n\
             \x20          [--checkpoint-every K] [--ckpt-dir D] [--resume]\n\
             \x20 One simulation with stats; exits 1 on an invariant/oracle violation."
        }
        "profile" => {
            "norush profile <benchmark> [--cores N] [--instr N] [--seed S] [--policy P]\n\
             \x20          [--check [K]] [--chaos SEED] [...]\n\
             \x20 One simulation timed by hot-loop component: cycles/sec plus the\n\
             \x20 memory-tick / core-step / invariant-sweep wall-clock split."
        }
        "compare" => {
            "norush compare <benchmark> [--cores N] [--instr N] [--seed S] [--jobs N]\n\
             \x20 The eager/lazy/row/row-fwd/far table for one benchmark."
        }
        "soak" => {
            "norush soak [--phases N] [--policies P,Q] [--kernel K|rotate] [--cores N]\n\
             \x20          [--seed S] [--ops N] [--shards N] [--keys N] [--zipf-theta T]\n\
             \x20          [--read-frac F] [--mean-gap G] [--burst-epoch N] [--burst-factor B]\n\
             \x20          [--chaos SEED] [--chaos-latency N] [--chaos-drop/-dup/-corrupt P]\n\
             \x20          [--chaos-escalation F] [--phase-cycles N] [--wall-secs S]\n\
             \x20          [--checkpoint-every K] [--watchdog N] [--out FILE] [--repro-dir D]\n\
             \x20          [--inject-net-zero-faa N]\n\
             \x20 Phased lock-service soak with the online linearizability checker;\n\
             \x20 exits 1 on a violation (triage bundle in --repro-dir, default soak_repro)."
        }
        "fuzz" => {
            "norush fuzz [--policy P] [--kernel counter|mpmc-queue|mw-register] [--cores N]\n\
             \x20          [--ops N] [--seed S] [--budget N] [--jobs N] [--cycles LIMIT]\n\
             \x20          [--watchdog N] [--state FILE] [--out FILE] [--repro-dir D]\n\
             \x20          [--inject-early-unblock] [--resume] [--replay HEX]\n\
             \x20 Coverage-guided protocol-schedule fuzzing; exits 1 on a finding\n\
             \x20 (minimized repro + triage bundle in --repro-dir, default fuzz_repro)."
        }
        "litmus" => {
            "norush litmus [--test T[,U]] [--policies P,Q] [--samples N] [--seed S]\n\
             \x20          [--jobs N] [--cycles LIMIT] [--out FILE] [--repro-dir D]\n\
             \x20 TSO litmus conformance in sampling mode: each (test x policy) cell runs\n\
             \x20 the default schedule plus seeded pseudo-random delay vectors, recording\n\
             \x20 outcome frequencies. Default: whole suite x eager,lazy,row. Writes a\n\
             \x20 norush-litmus-v1 report (default litmus_report.json); exits 1 on any\n\
             \x20 forbidden/unlisted outcome or structural violation."
        }
        "explore" => {
            "norush explore [--test T[,U]] [--policy P] [--depth N] [--delays N]\n\
             \x20          [--max-runs N] [--cycles LIMIT] [--jobs N] [--out FILE]\n\
             \x20          [--repro-dir D] [--require-witness] [--inject-early-unblock]\n\
             \x20          [--replay HEX]\n\
             \x20 Bounded-exhaustive exploration: DFS over message-delivery and\n\
             \x20 atomic-commit decision points (first --depth points, at most --delays\n\
             \x20 deviations per schedule) with partial-order reduction and frontier\n\
             \x20 state dedup. Asserts declared-forbidden outcomes unreachable; with\n\
             \x20 --require-witness also that every allowed outcome was observed.\n\
             \x20 Violations are minimized and written to --repro-dir with a --replay\n\
             \x20 repro command; exits 1 on a violation."
        }
        "microbench" => {
            "norush microbench [--iters N] [--fenced]\n\x20 Fig. 2 cycles/iteration table."
        }
        "record" => {
            "norush record <benchmark> <file> [--instr N] [--tid T] [--threads N] [--seed S]\n\
             \x20 Capture a trace file for later replay."
        }
        "replay" => "norush replay <file> [--policy P]\n\x20 Replay a recorded trace file.",
        _ => return usage(),
    };
    println!("{text}");
    Ok(())
}

fn main() -> CliResult {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return usage();
    }
    let cmd = raw.remove(0);
    let args = parse_args(raw);
    if args.switches.contains("help") || args.flags.contains_key("help") {
        return sub_help(&cmd);
    }
    match cmd.as_str() {
        "list" => cmd_list(),
        "table1" => cmd_table1(),
        "run" => cmd_run(&args),
        "profile" => cmd_profile(&args),
        "compare" => cmd_compare(&args),
        "soak" => cmd_soak(&args),
        "fuzz" => cmd_fuzz(&args),
        "litmus" => cmd_litmus(&args),
        "explore" => cmd_explore(&args),
        "microbench" => cmd_microbench(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command `{other}`\n");
            usage()
        }
    }
}
