//! `norush` — a from-scratch Rust reproduction of *“No Rush in Executing
//! Atomic Instructions”* (HPCA 2025).
//!
//! The paper proposes **Rush or Wait (RoW)**: a 64-byte hardware mechanism
//! that predicts, per atomic RMW instruction, whether it will face contention
//! and schedules it *eager* (issue as soon as operands are ready) or *lazy*
//! (wait to be the oldest memory instruction with a drained store buffer) to
//! minimize cacheline lock time where it matters.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `row-common` | ids, cycles, Table I configuration, RNG, stats |
//! | [`noc`] | `row-noc` | 2-D mesh interconnect (GARNET substitute) |
//! | [`mem`] | `row-mem` | caches + MESI directory + cache locking (GEMS substitute) |
//! | [`cpu`] | `row-cpu` | the out-of-order x86-TSO core with unfenced atomics |
//! | [`core_row`] | `row-core` | **the contribution**: contention detectors + predictor |
//! | [`workloads`] | `row-workloads` | benchmark models + the Fig. 2 microbenchmark |
//! | [`sim`] | `row-sim` | the multicore machine and per-figure experiment runner |
//! | [`check`] | `row-check` | robustness layer: invariant sweep + stall diagnostics |
//! | [`oracle`] | `row-oracle` | differential end-state oracle (sequential golden model) |
//!
//! # Quickstart
//!
//! ```
//! use norush::sim::{run_eager, run_lazy, ExperimentConfig};
//! use norush::workloads::Benchmark;
//!
//! let mut exp = ExperimentConfig::quick();
//! exp.cores = 4;
//! exp.instructions = 2_000;
//! let eager = run_eager(Benchmark::Pc, &exp).expect("simulates");
//! let lazy = run_lazy(Benchmark::Pc, &exp).expect("simulates");
//! // `pc` is highly contended: waiting beats rushing.
//! assert!(lazy.cycles < eager.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use row_check as check;
pub use row_common as common;
pub use row_core as core_row;
pub use row_cpu as cpu;
pub use row_mem as mem;
pub use row_noc as noc;
pub use row_oracle as oracle;
pub use row_sim as sim;
pub use row_workloads as workloads;

pub use row_common::{Cycle, SystemConfig};
pub use row_core::{ExecMode, RowEngine};
pub use row_sim::{ExperimentConfig, Machine, RowVariant, RunResult, SimError};
pub use row_workloads::Benchmark;
